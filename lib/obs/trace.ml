(* Tracing spans with parent links and ring-buffer retention.

   A span context (stack of open span ids) is kept per (domain, thread):
   serve runs many systhreads per domain and [Thread.id] is only unique
   within a domain, so the pair is the key.  Domain_pool tasks inherit
   the submitter's context — module initialisation installs a task hook
   which captures the parent span and submit timestamp on the submitting
   thread, then re-establishes the context around the task body on the
   worker.  Spans opened inside pooled work therefore parent correctly
   across domains, and the submit-to-start gap is measured as the
   [pool.queue_wait] histogram (vs. [pool.run] for the body itself).

   Completed spans land in a fixed-size ring (newest wins); export is a
   snapshot of the ring, text or JSON. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  args : string;
  start_ns : int;
  dur_ns : int;
  domain : int;
}

let next_id = Atomic.make 1

(* --- per-(domain, thread) context stacks --- *)

let ctx_mutex = Mutex.create ()
let ctx : (int * int, int list) Hashtbl.t = Hashtbl.create 32
let ctx_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let ctx_locked f =
  Mutex.lock ctx_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ctx_mutex) f

let stack () = ctx_locked (fun () -> Option.value ~default:[] (Hashtbl.find_opt ctx (ctx_key ())))

let set_stack s =
  ctx_locked (fun () ->
      let k = ctx_key () in
      match s with [] -> Hashtbl.remove ctx k | _ -> Hashtbl.replace ctx k s)

let current () = match stack () with [] -> None | id :: _ -> Some id

(* --- ring of completed spans --- *)

let default_capacity = 4096
let ring_mutex = Mutex.create ()
let ring = ref (Array.make default_capacity None)
let ring_next = ref 0 (* total spans ever recorded *)

let ring_locked f =
  Mutex.lock ring_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring_mutex) f

let set_capacity n =
  if n < 1 then invalid_arg "Sbi_obs.Trace.set_capacity: capacity < 1";
  ring_locked (fun () ->
      ring := Array.make n None;
      ring_next := 0)

let clear () =
  ring_locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      ring_next := 0)

let record span =
  ring_locked (fun () ->
      !ring.(!ring_next mod Array.length !ring) <- Some span;
      incr ring_next)

let recent ?n () =
  ring_locked (fun () ->
      let cap = Array.length !ring in
      let have = min !ring_next cap in
      let want = match n with Some n when n >= 0 && n < have -> n | _ -> have in
      (* oldest-first among the newest [want] spans *)
      List.init want (fun i ->
          match !ring.((!ring_next - want + i) mod cap) with
          | Some s -> s
          | None -> assert false))

(* --- spans --- *)

let with_span ?(args = "") ~name f =
  if not (Control.is_enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let saved = stack () in
    let parent = match saved with [] -> None | p :: _ -> Some p in
    set_stack (id :: saved);
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        (* record even when [f] raises: failing spans matter most *)
        let dur = Clock.now_ns () - t0 in
        set_stack saved;
        record
          {
            id;
            parent;
            name;
            args;
            start_ns = t0;
            dur_ns = (if dur < 0 then 0 else dur);
            domain = (Domain.self () :> int);
          })
      f
  end

let with_parent parent f =
  let saved = stack () in
  set_stack (match parent with None -> [] | Some p -> [ p ]);
  Fun.protect ~finally:(fun () -> set_stack saved) f

(* --- Domain_pool integration --- *)

let pool_tasks = Registry.counter "pool.tasks"
let pool_wait = Registry.histogram "pool.queue_wait"
let pool_run = Registry.histogram "pool.run"

(* Runs on the submitting thread at submit time (capturing the parent
   span and the submit clock); the returned closure runs on a worker.
   Inline pool paths (a worker's own block, nested async) never enqueue
   and keep their natural context without this. *)
let wrap_task task =
  if not (Control.is_enabled ()) then task
  else begin
    let parent = current () in
    let submitted = Clock.now_ns () in
    fun () ->
      Registry.incr pool_tasks;
      let started = Clock.now_ns () in
      Registry.observe_ns pool_wait (started - submitted);
      Fun.protect
        ~finally:(fun () -> Registry.observe_ns pool_run (Clock.now_ns () - started))
        (fun () -> with_parent parent task)
  end

let () = Sbi_par.Domain_pool.set_task_hook wrap_task

(* Bare fire-and-forget tasks that escape with an exception: the pool
   already counts them per-pool and prints to stderr; this hook makes
   them visible process-wide through the metrics registry. *)
let pool_task_err = Registry.counter "pool.task_err"
let () = Sbi_par.Domain_pool.add_error_hook (fun _exn -> Registry.incr pool_task_err)

(* --- export --- *)

let line_of s =
  Printf.sprintf "span=%d parent=%s name=%s dur=%s domain=%d%s" s.id
    (match s.parent with Some p -> string_of_int p | None -> "-")
    s.name (Clock.pp_ns s.dur_ns) s.domain
    (if s.args = "" then "" else " args=" ^ s.args)

let lines ?n () = List.map line_of (recent ?n ())

let json_of s =
  let module J = Sbi_util.Json in
  J.Obj
    [
      ("id", J.int s.id);
      ("parent", match s.parent with Some p -> J.int p | None -> J.Null);
      ("name", J.Str s.name);
      ("args", J.Str s.args);
      ("start_ns", J.int s.start_ns);
      ("dur_ns", J.int s.dur_ns);
      ("domain", J.int s.domain);
    ]

let to_json ?n () = Sbi_util.Json.List (List.map json_of (recent ?n ()))
