(** Mergeable log2-bucketed duration histogram (microsecond buckets).

    Bucket [i] counts durations with [us < 2^i] for [i < nbuckets]; the
    last bucket is a distinct overflow bucket for durations at or above
    {!max_finite_bound_us} (2{^23} us, ~8.4 s) and is always reported as
    [Gt], never with a false finite upper bound.  Lock-free: each bucket
    is an [Atomic.t], so observation costs one increment and histograms
    merge by bucket-wise addition. *)

type t

val nbuckets : int
(** Number of finite buckets (24).  {!counts} arrays have [nbuckets + 1]
    entries; the last is the overflow bucket. *)

val max_finite_bound_us : int
(** Largest finite bucket bound, [2^(nbuckets - 1)] = 8388608 us. *)

val create : unit -> t

val observe_ns : t -> int -> unit
(** Record one duration in nanoseconds.  Negative values are clamped to
    0; callers that need to distinguish anomalies count them
    separately. *)

val bucket_of_ns : int -> int
(** Bucket index for a duration; [nbuckets] for overflow. *)

val counts : t -> int array
val total : t -> int

val merge_into : into:t -> t -> unit
(** Bucket-wise add: merging two histograms is exactly equivalent to
    bucketing the concatenation of their observations. *)

(** A reported bucket bound: [Le b] means "at most [b] us"; [Gt b] is
    the overflow bucket — "more than [b] us", no finite upper bound. *)
type bound = Le of int | Gt of int

val bound_of_bucket : int -> bound

val pp_bound : bound -> string
(** ["8"], ["1024"], [">8388608"]. *)

val buckets : t -> (bound * int) list
(** Non-empty buckets in increasing-bound order. *)

val percentile : t -> float -> bound option
(** Nearest-rank percentile as a bucket bound; [None] when empty.  Ranks
    falling in the overflow bucket saturate to [Gt max_finite_bound_us]
    rather than inventing a finite bound. *)
