(** Observability layer: monotonic {!Clock}, typed metrics {!Registry}
    over mergeable log2 {!Hist} histograms, {!Trace} spans propagated
    across [Sbi_par.Domain_pool] tasks, and a {!Slowlog}.  See
    docs/observability.md.

    [set_enabled false] turns every instrumentation point into a no-op
    (bench A/Bs this to gate overhead at <= 2%); reads and exports keep
    working either way. *)

module Clock = Clock
module Hist = Hist
module Registry = Registry
module Trace = Trace
module Slowlog = Slowlog

let set_enabled = Control.set_enabled
let enabled = Control.is_enabled
