(** Monotonic process clock.

    [now_ns] reads [clock_gettime(CLOCK_MONOTONIC)] through a C stub and
    never goes backwards, so differences of two reads are safe to use as
    durations even across an NTP step.  The wall clock
    ([Unix.gettimeofday]) is kept only for human-facing timestamps such
    as server uptime. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary (boot-time) origin; strictly for
    measuring elapsed time, never for calendar time. *)

val with_mock : (unit -> int) -> (unit -> 'a) -> 'a
(** [with_mock source body] makes {!now_ns} return [source ()] for the
    duration of [body] (restored on exception).  Test-only; the mock is
    process-wide. *)

val counter : ?start:int -> ?step:int -> unit -> unit -> int
(** A deterministic mock source: each call returns the previous value
    plus [step] (default 1000 ns), so [with_mock (counter ()) ...]
    gives every timed region an exact 1 us duration. *)

val pp_ns : int -> string
(** Human-readable duration: ["250ns"], ["1.5us"], ["12.3ms"],
    ["2.50s"]. *)
