/* Monotonic clock for Sbi_obs.Clock: CLOCK_MONOTONIC via clock_gettime,
   returned as nanoseconds in an int64.  Immune to NTP steps and
   settimeofday, unlike Unix.gettimeofday — durations are differences of
   two reads of this clock and can never come out negative because the
   wall clock was adjusted mid-measurement. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

int64_t sbi_obs_monotonic_ns_native(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec;
}

CAMLprim value sbi_obs_monotonic_ns_byte(value unit)
{
  return caml_copy_int64(sbi_obs_monotonic_ns_native(unit));
}
