(** Tracing spans: named, timed regions with parent links, retained in a
    fixed-size ring buffer.

    [with_span ~name f] opens a span around [f]: the span records its
    monotonic start time, duration, owning domain, and the id of the
    enclosing span on the same (domain, thread) — so nested calls form a
    tree.  Contexts propagate across {!Sbi_par.Domain_pool} submission:
    this module installs the pool's task hook at initialisation, which
    captures the submitter's current span and re-establishes it around
    the task on the worker, and measures the submit-to-start gap into
    the [pool.queue_wait] registry histogram ([pool.run] times the body,
    [pool.tasks] counts them, [pool.task_err] counts bare submit tasks
    that escaped with an exception — see
    {!Sbi_par.Domain_pool.add_error_hook}).

    All of it is a no-op while [Sbi_obs.set_enabled false]. *)

type span = {
  id : int;
  parent : int option;  (** enclosing span at open time, across pool hops *)
  name : string;
  args : string;
  start_ns : int;  (** monotonic ({!Clock.now_ns}), not wall time *)
  dur_ns : int;
  domain : int;
}

val with_span : ?args:string -> name:string -> (unit -> 'a) -> 'a
(** Run [f] inside a new span.  The span is recorded (ring buffer,
    newest wins) when [f] returns {e or raises} — failing spans matter
    most. *)

val current : unit -> int option
(** Id of the innermost open span on this (domain, thread). *)

val with_parent : int option -> (unit -> 'a) -> 'a
(** Run [f] with the context stack replaced by the given parent
    (restored after).  Used by the pool hook; useful for manual
    cross-thread handoff. *)

val recent : ?n:int -> unit -> span list
(** The newest [n] (default: all) retained spans, oldest first. *)

val lines : ?n:int -> unit -> string list
(** One text line per span:
    [span=12 parent=3 name=serve.topk dur=1.2ms domain=0]. *)

val to_json : ?n:int -> unit -> Sbi_util.Json.t

val set_capacity : int -> unit
(** Resize the ring (discards retained spans).  Default 4096. *)

val clear : unit -> unit
(** Drop all retained spans (for tests). *)
