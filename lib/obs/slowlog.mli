(** Slow-query log.

    When a threshold is set ({!set_threshold_ms}), every observed
    operation at or above it is recorded — command name, CRC-32 digest
    of the argument string (never the arguments themselves), duration,
    and the index snapshot epoch it ran against — kept in a small ring
    and emitted as one line to the sink (stderr by default):

    {v slow-query cmd=topk args=#9ae1f203 dur_ms=12.345 epoch=3 v}

    Disabled by default and while [Sbi_obs.set_enabled false]. *)

type entry = { cmd : string; args_digest : string; dur_ns : int; epoch : int }

val set_threshold_ms : int option -> unit
(** [Some ms] enables logging of operations taking >= [ms]
    milliseconds ([Some 0] logs everything); [None] disables. *)

val threshold_ms : unit -> int option

val observe : cmd:string -> args:string -> dur_ns:int -> epoch:int -> unit
(** Record one operation; a no-op unless enabled and [dur_ns] meets the
    threshold. *)

val recent : ?n:int -> unit -> entry list
(** The newest [n] (default: all) retained entries, oldest first. *)

val line_of : entry -> string

val set_sink : (string -> unit) -> unit
(** Replace the stderr sink (tests; a server embedding). *)

val clear : unit -> unit
