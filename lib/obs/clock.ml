(* Monotonic time.  [now_ns] must never go backwards within a process:
   request latencies, span durations and queue-wait measurements are all
   differences of two [now_ns] reads, and a wall-clock NTP step in the
   middle of a request is exactly the corruption this module exists to
   rule out. *)

external monotonic_ns : unit -> (int64[@unboxed])
  = "sbi_obs_monotonic_ns_byte" "sbi_obs_monotonic_ns_native"
[@@noalloc]

(* Tests substitute a deterministic source; an Atomic so a mock installed
   on one thread is seen by spans recorded on another. *)
let source : (unit -> int) option Atomic.t = Atomic.make None

let now_ns () =
  match Atomic.get source with
  | None -> Int64.to_int (monotonic_ns ())
  | Some f -> f ()

let with_mock f body =
  Atomic.set source (Some f);
  Fun.protect ~finally:(fun () -> Atomic.set source None) body

let counter ?(start = 0) ?(step = 1_000) () =
  let t = Atomic.make start in
  fun () -> Atomic.fetch_and_add t step

let pp_ns ns =
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)
