(* Master switch for the observability layer.  Checked (one Atomic.get)
   at every instrumentation point so bench can A/B instrumented vs.
   uninstrumented runs; spans, timers and the slow-query log all become
   no-ops when disabled.  Serve's per-request Metrics are intentionally
   not gated: the [stats] wire output must not change shape under the
   switch. *)

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled
