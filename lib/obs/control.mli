(** Process-wide on/off switch for instrumentation; re-exported as
    [Sbi_obs.set_enabled] / [Sbi_obs.enabled]. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool
