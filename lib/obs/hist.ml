(* Log2-bucketed duration histogram, factored out of lib/serve/metrics.
   Finite buckets are powers of two in microseconds: bucket [i] counts
   durations with [us < 2^i] for [i] in [0, nbuckets), i.e. 1 us up to a
   largest finite bound of 2^23 us = 8.388608 s.  Everything at or above
   that lands in a distinct overflow bucket which is always reported as
   [Gt 8388608], never with a fabricated finite upper bound.  Counts are
   Atomics so concurrent observers (server threads, pool workers) need no
   lock, and merging is bucket-wise addition — exactly equivalent to
   bucketing the concatenation of the two observation streams. *)

let nbuckets = 24
let max_finite_bound_us = 1 lsl (nbuckets - 1)

type t = { counts : int Atomic.t array } (* length nbuckets + 1; last = overflow *)

let create () = { counts = Array.init (nbuckets + 1) (fun _ -> Atomic.make 0) }

(* Negative durations (a mocked clock, or a caller that failed to clamp)
   count as 0 rather than corrupting the bucket scan; callers that need
   to distinguish anomalies (serve) count them separately. *)
let bucket_of_ns ns =
  let us = if ns <= 0 then 0 else ns / 1000 in
  let rec go i = if i >= nbuckets then nbuckets else if us < 1 lsl i then i else go (i + 1) in
  go 0

let observe_ns t ns = Atomic.incr t.counts.(bucket_of_ns ns)
let counts t = Array.map Atomic.get t.counts
let total t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts

let merge_into ~into t =
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n > 0 then ignore (Atomic.fetch_and_add into.counts.(i) n))
    t.counts

type bound = Le of int | Gt of int

let bound_of_bucket i = if i >= nbuckets then Gt max_finite_bound_us else Le (1 lsl i)
let pp_bound = function Le us -> string_of_int us | Gt us -> ">" ^ string_of_int us

let buckets t =
  let out = ref [] in
  for i = nbuckets downto 0 do
    let n = Atomic.get t.counts.(i) in
    if n > 0 then out := (bound_of_bucket i, n) :: !out
  done;
  !out

(* Nearest-rank percentile over bucket counts: the bound of the bucket
   the rank falls in.  A rank landing in the overflow bucket saturates
   to [Gt max_finite_bound_us] — there is no honest finite answer. *)
let percentile t p =
  let counts = counts t in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then None
  else begin
    let rank = min total (int_of_float (float_of_int total *. p /. 100.) + 1) in
    let seen = ref 0 and found = ref None in
    Array.iteri
      (fun i c ->
        if !found = None then begin
          seen := !seen + c;
          if !seen >= rank then found := Some (bound_of_bucket i)
        end)
      counts;
    !found
  end
