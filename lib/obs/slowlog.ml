(* Slow-query log: operations whose duration crosses a configurable
   threshold are recorded with the command, a CRC-32 digest of the
   arguments (bounded size, no payload retention — an ingest body never
   lands in a log line), the duration, and the index snapshot epoch
   current when the operation ran — enough to answer "was the slow topk
   before or after that big ingest?".  Disabled by default; entries go
   to a small ring (for the wire protocol / tests) and to a sink,
   stderr unless replaced. *)

type entry = { cmd : string; args_digest : string; dur_ns : int; epoch : int }

let threshold_ns = Atomic.make (-1) (* < 0: disabled (the default) *)

let set_threshold_ms = function
  | None -> Atomic.set threshold_ns (-1)
  | Some ms -> Atomic.set threshold_ns (max 0 ms * 1_000_000)

let threshold_ms () =
  let t = Atomic.get threshold_ns in
  if t < 0 then None else Some (t / 1_000_000)

let digest args = Printf.sprintf "%08x" (Sbi_util.Crc32.string args)

let line_of e =
  Printf.sprintf "slow-query cmd=%s args=#%s dur_ms=%.3f epoch=%d" e.cmd e.args_digest
    (float_of_int e.dur_ns /. 1e6) e.epoch

let capacity = 256
let mutex = Mutex.create ()
let entries : entry option array = Array.make capacity None
let next = ref 0
let sink = ref (fun line -> Printf.eprintf "%s\n%!" line)

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let set_sink f = locked (fun () -> sink := f)
let count = Registry.counter "slowlog.entries"

let observe ~cmd ~args ~dur_ns ~epoch =
  let th = Atomic.get threshold_ns in
  if th >= 0 && dur_ns >= th && Control.is_enabled () then begin
    let e = { cmd; args_digest = digest args; dur_ns; epoch } in
    Registry.incr count;
    (* grab the sink under the lock, emit outside it: a slow stderr (or
       a test sink taking its own locks) must not serialize observers *)
    let emit =
      locked (fun () ->
          entries.(!next mod capacity) <- Some e;
          incr next;
          !sink)
    in
    emit (line_of e)
  end

let recent ?n () =
  locked (fun () ->
      let have = min !next capacity in
      let want = match n with Some n when n >= 0 && n < have -> n | _ -> have in
      List.init want (fun i ->
          match entries.((!next - want + i) mod capacity) with
          | Some e -> e
          | None -> assert false))

let clear () =
  locked (fun () ->
      Array.fill entries 0 capacity None;
      next := 0)
