open Sbi_util

type t = {
  pred : int;
  f : int;
  s : int;
  f_obs : int;
  s_obs : int;
  failure : float;
  context : float;
  increase : float;
  increase_ci : Stats.interval;
  z : float;
  sensitivity : float;
  importance : float;
  importance_ci : Stats.interval;
}

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let sensitivity_stderr ~f ~num_f =
  (* Delta method through x -> log x / log NumF with Var(F) from a binomial
     F ~ B(NumF, F/NumF). *)
  if f <= 0 || num_f <= 1 then 0.
  else begin
    let ff = float_of_int f in
    let nf = float_of_int num_f in
    let var_f = ff *. (1. -. (ff /. nf)) in
    sqrt var_f /. (ff *. log nf)
  end

let score ?(confidence = 0.95) (c : Counts.t) ~pred =
  let f = c.Counts.f.(pred) in
  let s = c.Counts.s.(pred) in
  let f_obs = c.Counts.f_obs.(pred) in
  let s_obs = c.Counts.s_obs.(pred) in
  let failure = ratio f (f + s) in
  let context = ratio f_obs (f_obs + s_obs) in
  let increase = if f + s = 0 || f_obs + s_obs = 0 then 0. else failure -. context in
  let increase_ci = Stats.increase_ci ~confidence ~f ~s ~f_obs ~s_obs () in
  let z = Stats.two_proportion_z ~f ~s ~f_obs ~s_obs in
  let sensitivity = Stats.log_ratio f c.Counts.num_f in
  let importance = Stats.harmonic_mean2 increase sensitivity in
  let importance_ci =
    Stats.importance_ci ~confidence ~increase
      ~increase_stderr:(Stats.increase_stderr ~f ~s ~f_obs ~s_obs)
      ~sensitivity
      ~sensitivity_stderr:(sensitivity_stderr ~f ~num_f:c.Counts.num_f)
      ()
  in
  {
    pred;
    f;
    s;
    f_obs;
    s_obs;
    failure;
    context;
    increase;
    increase_ci;
    z;
    sensitivity;
    importance;
    importance_ci;
  }

let score_all ?confidence c = Array.init c.Counts.npreds (fun pred -> score ?confidence c ~pred)

let compare_importance_desc a b =
  match Float.compare b.importance a.importance with
  | 0 -> ( match Int.compare b.f a.f with 0 -> Int.compare a.pred b.pred | n -> n)
  | n -> n
