open Sbi_runtime

type entry = {
  pred : int;
  importance_before : float;
  importance_after : float;
  drop : float;
}

let list ?(confidence = 0.95) ds ~selected ~others =
  let counts_before = Counts.compute ds in
  let without =
    Dataset.filter_runs ds (fun r -> not (Report.is_true r selected))
  in
  let counts_after = Counts.compute without in
  let entries =
    List.filter_map
      (fun pred ->
        if pred = selected then None
        else begin
          let before = (Scores.score ~confidence counts_before ~pred).Scores.importance in
          let after = (Scores.score ~confidence counts_after ~pred).Scores.importance in
          Some { pred; importance_before = before; importance_after = after; drop = before -. after }
        end)
      others
  in
  List.sort
    (fun a b ->
      match Float.compare b.drop a.drop with 0 -> Int.compare a.pred b.pred | n -> n)
    entries

let top_affine = function
  | { drop; pred; _ } :: _ when drop > 0. -> Some pred
  | _ -> None
