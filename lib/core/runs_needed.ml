open Sbi_runtime

let default_grid =
  let small = List.init 10 (fun i -> (i + 1) * 100) in
  let large = List.init 24 (fun i -> (i + 2) * 1000) in
  small @ large

let importance_at ?confidence ds ~pred ~n =
  let counts = Counts.compute (Dataset.sub ds n) in
  (Scores.score ?confidence counts ~pred).Scores.importance

let curve ?confidence ?(grid = default_grid) ds ~pred =
  let total = Dataset.nruns ds in
  let grid = List.filter (fun n -> n < total) (List.sort_uniq Int.compare grid) @ [ total ] in
  List.map (fun n -> (n, importance_at ?confidence ds ~pred ~n)) grid

type answer = {
  pred : int;
  min_runs : int;
  f_at_min : int;
  full_importance : float;
}

let f_at ds ~pred ~n =
  let counts = Counts.compute (Dataset.sub ds n) in
  counts.Counts.f.(pred)

let min_runs ?confidence ?(threshold = 0.2) ?(grid = default_grid) ds ~pred =
  let total = Dataset.nruns ds in
  let full = importance_at ?confidence ds ~pred ~n:total in
  let grid = List.filter (fun n -> n < total) (List.sort_uniq Int.compare grid) @ [ total ] in
  let rec go = function
    | [] -> None
    | n :: rest ->
        let imp = importance_at ?confidence ds ~pred ~n in
        if full -. imp < threshold && imp > 0. then
          Some { pred; min_runs = n; f_at_min = f_at ds ~pred ~n; full_importance = full }
        else go rest
  in
  go grid
