type strategy = By_failure_count | By_increase | By_importance

let strategy_to_string = function
  | By_failure_count -> "descending F(P)"
  | By_increase -> "descending Increase(P)"
  | By_importance -> "descending harmonic-mean Importance(P)"

let comparator = function
  | By_failure_count ->
      fun (a : Scores.t) (b : Scores.t) ->
        (match Int.compare b.Scores.f a.Scores.f with
        | 0 -> (
            match Float.compare b.Scores.increase a.Scores.increase with
            | 0 -> Int.compare a.Scores.pred b.Scores.pred
            | n -> n)
        | n -> n)
  | By_increase ->
      fun a b ->
        (match Float.compare b.Scores.increase a.Scores.increase with
        | 0 -> (
            match Int.compare b.Scores.f a.Scores.f with
            | 0 -> Int.compare a.Scores.pred b.Scores.pred
            | n -> n)
        | n -> n)
  | By_importance -> Scores.compare_importance_desc

let sort strategy scores =
  let out = Array.copy scores in
  Array.stable_sort (comparator strategy) out;
  out

let top ?(n = 10) strategy scores =
  (* bounded selection: O(len log n) rather than sorting everything *)
  let desc = comparator strategy in
  Sbi_util.Topk.top ~k:n ~compare:(fun a b -> desc b a) scores
