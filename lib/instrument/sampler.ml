type plan =
  | Always
  | Uniform of float
  | Per_site of float array

let plan_rate plan site =
  match plan with
  | Always -> 1.
  | Uniform r -> r
  | Per_site rates -> if site < Array.length rates then rates.(site) else 0.

type t = {
  plan : plan;
  nsites : int;
  countdown : int array;  (* visits remaining until next sample; -1 = never *)
  rng : Sbi_util.Prng.t;
}

let draw_countdown t site =
  let rate = plan_rate t.plan site in
  if rate >= 1. then 1
  else if rate <= 0. then -1
  else Sbi_util.Prng.geometric t.rng rate

let create ?(seed = 0x5eed) ~nsites plan =
  let t = { plan; nsites; countdown = Array.make (max nsites 1) 1; rng = Sbi_util.Prng.create seed } in
  for site = 0 to nsites - 1 do
    t.countdown.(site) <- draw_countdown t site
  done;
  t

let reseed t seed = Sbi_util.Prng.reseed t.rng seed

let begin_run t =
  for site = 0 to t.nsites - 1 do
    t.countdown.(site) <- draw_countdown t site
  done

let should_sample t site =
  let c = t.countdown.(site) in
  if c < 0 then false
  else if c <= 1 then begin
    t.countdown.(site) <- draw_countdown t site;
    true
  end
  else begin
    t.countdown.(site) <- c - 1;
    false
  end

let observed_rate t site = plan_rate t.plan site
