(** Sparse random sampling of instrumentation sites (§2, §4).

    Each site visit is a Bernoulli trial: with probability equal to the
    site's sampling rate, the visit is observed.  As in the deployed CBI
    system, the Bernoulli process is implemented with a geometric
    "next-sample countdown" so that unobserved visits cost one decrement.

    Rates are given by a {!plan}: the paper uses a global 1/100 rate for
    most experiments and {e non-uniform} per-site rates (inversely
    proportional to training frequency — see {!Adaptive}) for the reported
    results. *)

type plan =
  | Always  (** rate 1.0 everywhere: complete observation, no sampling *)
  | Uniform of float  (** one global rate in (0, 1] *)
  | Per_site of float array  (** rate per site id, each in \[0, 1\] *)

val plan_rate : plan -> int -> float
(** Rate of a given site under a plan (sites beyond a [Per_site] array get
    rate 0). *)

type t

val create : ?seed:int -> nsites:int -> plan -> t

val reseed : t -> int -> unit
(** [reseed t seed] resets the sampler's coin-flip stream to a fresh state
    derived from [seed] (countdowns are unchanged until the next
    {!begin_run}).  Collection reseeds before every run with a key mixed
    from the collection seed and the run index, making each run's sampling
    independent of execution order — the invariant that lets parallel
    collection reproduce sequential results exactly. *)

val begin_run : t -> unit
(** Re-randomizes all countdowns; call before each program run so runs are
    independent (the deployed system's per-process re-randomization). *)

val should_sample : t -> int -> bool
(** [should_sample t site] performs one Bernoulli trial for [site]:
    decrements its countdown and reports (and re-arms) on expiry.  Sites
    with rate 0 never sample; rate 1 always samples. *)

val observed_rate : t -> int -> float
(** The configured rate for a site (mirror of {!plan_rate}). *)
