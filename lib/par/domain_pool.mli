(** Work-stealing chunked domain pool.

    A fixed set of OCaml 5 domains, one task queue per worker.  External
    submissions round-robin across the queues; an idle worker steals from
    its peers before sleeping, so load rebalances without a global lock.
    Fan-outs ({!parallel_for}, {!parallel_for_scratch}, {!map_array}) cut
    [0, n) into ~4 chunks per participant (never smaller than [grain]),
    publish one shared helper task per worker — one lock round per
    fan-out, not one per block — and let every participant, caller
    included, claim chunks from an atomic cursor.  Chunk {e boundaries}
    depend only on (n, grain, pool size), so results are bit-identical to
    sequential execution for every domain count even though chunk
    {e assignment} is dynamic.  Work at or below [grain] runs inline on
    the caller and never touches the pool.

    Nested calls from inside a worker execute inline rather than
    re-entering the queue, which makes composition (a pooled server query
    that itself fans out rescoring) deadlock-free by construction. *)

type t

type task = unit -> unit

val create : ?clamp:bool -> ?domains:int -> unit -> t
(** [create ~domains:n ()] spawns [n - 1] worker domains; the calling
    domain acts as participant 0 of every fan-out it issues, so
    [n <= 1] spawns nothing.  [n] defaults to {!default_domains}.
    Unless [clamp] is [false], [n] is capped at {!default_domains}:
    domains beyond the hardware count add no parallelism but multiply GC
    stop-the-world cost (every minor collection synchronizes all
    domains).  Pass [~clamp:false] in tests that must exercise real
    cross-domain execution regardless of the host. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val size : t -> int
(** Total participants: spawned workers + the calling domain. *)

val shutdown : t -> unit
(** Drain and join every worker.  Idempotent; after shutdown the pool
    executes everything inline on the caller. *)

val set_task_hook : (task -> task) -> unit
(** [set_task_hook w] wraps every task subsequently enqueued with [w],
    applied on the submitting thread at submit time — so [w] can capture
    submission-time context.  [Sbi_obs.Trace] installs one to propagate
    span parents across domains and measure queue wait vs. run time.
    Inline fast paths that never enqueue are not wrapped (they run in the
    submitter's context already).  Process-wide; intended to be installed
    once at startup. *)

val add_error_hook : (exn -> unit) -> unit
(** Process-global observer called (on the worker) whenever a bare
    {!submit} task escapes with an exception.  Such exceptions are also
    counted ({!task_errors}) and logged to stderr — never silently
    swallowed.  [async]/[parallel_for] exceptions are not errors in this
    sense: they re-raise at {!await} / the fan-out barrier. *)

val task_errors : t -> int
(** Number of tasks on this pool that raised with nobody to catch it. *)

val submit : t -> task -> unit
(** Fire-and-forget: enqueue [task] on some worker queue (round-robin).
    Runs inline when the pool has no workers, when called from one of
    this pool's workers, or when the pool is shutting down.  An escaping
    exception is counted, logged, and fed to {!add_error_hook} hooks; the
    pool survives it. *)

(** {1 Futures — cross-task parallelism (the serving path)} *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Run [f] on a worker (inline when the pool has no workers, when
    called from inside a worker, or after shutdown).  Exceptions are
    captured and re-raised by {!await}. *)

val await : 'a future -> 'a
val run : t -> (unit -> 'a) -> 'a
(** [run t f] = [await (async t f)]. *)

(** {1 Chunked fan-out — data parallelism} *)

val parallel_for : t -> ?grain:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~grain ~n f] covers [0, n) with calls [f lo hi] over
    disjoint chunk ranges, in parallel.  [grain] (default [1]) is the
    sequential cutoff and minimum chunk size: when [n <= grain] — or the
    pool has no workers, or the caller is already one of its workers —
    the whole range runs inline as [f 0 n].  Chunk boundaries are a pure
    function of (n, grain, pool size); [f] must write only
    index-disjoint locations, which makes the result independent of the
    dynamic chunk-to-domain assignment.  The first exception raised by
    any chunk is re-raised at the barrier after all chunks complete. *)

val parallel_for_scratch :
  t ->
  ?grain:int ->
  n:int ->
  scratch:(unit -> 'acc) ->
  merge:('acc -> unit) ->
  ('acc -> int -> int -> unit) ->
  unit
(** Like {!parallel_for}, but each participating domain allocates one
    private [scratch ()] accumulator for all the chunks it claims and
    [merge]s it into shared state exactly once, after its last chunk.
    Bodies touch only their private accumulator — no shared cache-line
    traffic during the loop.  [merge] calls are serialized (run under an
    internal lock) but their order is nondeterministic: [merge] must be
    commutative (e.g. elementwise integer sums) for results to stay
    deterministic.  The inline path is
    [let a = scratch () in body a 0 n; merge a]. *)

val map_array : t -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map built on {!parallel_for}.  [f] is
    applied to element 0 on the caller first (seeding the result array),
    then the rest fans out. *)
