(** A small, work-stealing-free pool of OCaml 5 domains.

    The pool owns [domains - 1] worker domains; the calling domain is
    always participant 0, so a 1-domain pool runs everything inline and
    degenerates to sequential execution with zero spawns.  Work is
    assigned {e statically}: {!parallel_for} splits [0, n) into one
    contiguous block per participant (the same deterministic split as
    [Par_collect.blocks]), so with disjoint writes the result is
    bit-identical for every pool size — the property the analysis engine
    is property-tested against.

    Nested calls from inside a worker execute inline rather than
    re-entering the queue, which makes composition (a pooled server query
    that itself fans out rescoring) deadlock-free by construction. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] workers
    (default {!default_domains}).  [domains <= 1] spawns nothing. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val size : t -> int
(** Total participants: spawned workers + the calling domain. *)

val shutdown : t -> unit
(** Drain and join every worker.  Idempotent; after shutdown the pool
    executes everything inline on the caller. *)

val set_task_hook : ((unit -> unit) -> unit -> unit) -> unit
(** [set_task_hook w] wraps every task subsequently enqueued (by
    {!async} or {!parallel_for}) with [w], applied on the submitting
    thread at submit time — so [w] can capture submission-time context.
    [Sbi_obs.Trace] installs one to propagate span parents across
    domains and measure queue wait vs. run time.  Inline fast paths
    that never enqueue are not wrapped.  Process-wide; intended to be
    installed once at startup. *)

(** {1 Futures — cross-task parallelism (the serving path)} *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Run [f] on a worker (inline when the pool has no workers, when
    called from inside a worker, or after shutdown).  Exceptions are
    captured and re-raised by {!await}. *)

val await : 'a future -> 'a
val run : t -> (unit -> 'a) -> 'a
(** [run t f] = [await (async t f)]. *)

(** {1 Static fan-out — data parallelism} *)

val parallel_for : t -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~n f] partitions [0, n) into [size t] contiguous
    blocks and calls [f lo hi] once per block, the caller's own block
    inline and the rest on workers; returns when every block is done.
    [f] must write only to block-disjoint locations.  The first
    exception raised by any block is re-raised at the barrier. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map built on {!parallel_for}. *)
