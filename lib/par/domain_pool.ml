type task = unit -> unit

(* Work-stealing chunked scheduler.
   - One queue per worker domain (own mutex + condvar).  External
     submitters round-robin over queues via an atomic ticket; a worker
     pops its own queue first and steals from peers when empty, so a
     backlog behind one busy worker drains through the others.
   - Fan-outs ({!parallel_for} and friends) do not enqueue one task per
     block.  They publish a single job descriptor (an atomic chunk
     cursor over [0, n) cut into ~4 chunks per participant, never
     smaller than [grain]) plus one shared helper task per worker; every
     participant — caller included — claims chunks with one
     [Atomic.fetch_and_add] each until the cursor runs dry.  Assignment
     is dynamic (stragglers rebalance automatically) while the chunk
     *boundaries* depend only on (n, grain, pool size), and bodies write
     block-disjoint locations, so results stay bit-identical to
     sequential for every domain count.
   - Sub-grain work ([n <= grain]) never touches the pool at all: it
     runs inline on the caller, which keeps warm cache-resident queries
     off the submission path entirely.
   - [create] clamps the pool to {!default_domains} unless told not to:
     domains beyond the hardware count cannot add parallelism but do
     multiply GC stop-the-world synchronization cost. *)

type wq = {
  q_mutex : Mutex.t;
  q_cond : Condition.t;  (* the owning worker sleeps here *)
  q_tasks : task Queue.t;
}

type t = {
  queues : wq array;  (* one per worker domain *)
  mutable handles : unit Domain.t array;
  shutting_down : bool Atomic.t;
  ticket : int Atomic.t;  (* round-robin cursor for external submits *)
  errors : int Atomic.t;  (* tasks that raised with nobody to catch it *)
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Worker membership is a domain-local flag written once at worker
   startup — O(1) per query instead of the old O(workers) id-array scan
   that ran on every async/parallel_for. *)
let dls_pool : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let on_worker t =
  match Domain.DLS.get dls_pool with Some p -> p == t | None -> false

(* --- error accounting (bare fire-and-forget tasks) ---

   async and parallel_for capture exceptions and re-raise them at the
   await/barrier; anything that still reaches the worker loop came from
   a bare {!submit} and used to vanish silently.  Now it is counted on
   the pool, printed to stderr, and fed to registered hooks (Sbi_obs
   adds one that bumps the [pool.task_err] counter). *)

let error_hooks : (exn -> unit) list ref = ref []
let add_error_hook h = error_hooks := h :: !error_hooks

let run_task pool task =
  try task ()
  with e ->
    Atomic.incr pool.errors;
    Printf.eprintf "sbi-par: task-error exn=%s\n%!" (Printexc.to_string e);
    List.iter (fun h -> try h e with _ -> ()) !error_hooks

let task_errors t = Atomic.get t.errors

(* --- queues: pop own, steal on empty, sleep on own condvar --- *)

let try_pop q =
  locked q.q_mutex (fun () ->
      if Queue.is_empty q.q_tasks then None else Some (Queue.pop q.q_tasks))

let try_steal pool idx =
  let w = Array.length pool.queues in
  let rec scan k =
    if k >= w then None
    else
      match try_pop pool.queues.((idx + k) mod w) with
      | Some _ as r -> r
      | None -> scan (k + 1)
  in
  scan 1

let rec get_task pool idx =
  let own = pool.queues.(idx) in
  match try_pop own with
  | Some _ as r -> r
  | None -> (
      match try_steal pool idx with
      | Some _ as r -> r
      | None ->
          if Atomic.get pool.shutting_down then None
          else begin
            (* sleep only if the own queue is still empty under the lock:
               submit signals under the same mutex, so no wakeup is lost.
               A task parked in a peer's queue wakes that peer's owner;
               stealing is opportunistic, not load-bearing for liveness. *)
            locked own.q_mutex (fun () ->
                if Queue.is_empty own.q_tasks && not (Atomic.get pool.shutting_down)
                then Condition.wait own.q_cond own.q_mutex);
            get_task pool idx
          end)

let rec worker_loop pool idx =
  match get_task pool idx with
  | None -> ()  (* shutting down and every reachable queue drained *)
  | Some task ->
      run_task pool task;
      worker_loop pool idx

let default_domains () = max 1 (Domain.recommended_domain_count ())

let create ?(clamp = true) ?domains () =
  let requested =
    match domains with Some d when d > 0 -> d | _ -> default_domains ()
  in
  (* more domains than cores is pure overhead: no extra parallelism, and
     every minor GC must stop-the-world across all of them *)
  let n = if clamp then min requested (default_domains ()) else requested in
  let pool =
    {
      queues =
        Array.init (n - 1) (fun _ ->
            { q_mutex = Mutex.create (); q_cond = Condition.create (); q_tasks = Queue.create () });
      handles = [||];
      shutting_down = Atomic.make false;
      ticket = Atomic.make 0;
      errors = Atomic.make 0;
    }
  in
  pool.handles <-
    Array.init (n - 1) (fun idx ->
        Domain.spawn (fun () ->
            Domain.DLS.set dls_pool (Some pool);
            worker_loop pool idx));
  pool

let size t = Array.length t.queues + 1

let shutdown t =
  Atomic.set t.shutting_down true;
  Array.iter (fun q -> locked q.q_mutex (fun () -> Condition.broadcast q.q_cond)) t.queues;
  Array.iter Domain.join t.handles;
  t.handles <- [||]

(* An optional wrapper applied to every queued task at submit time, on
   the submitting thread.  Sbi_obs installs one to propagate trace
   context across domains and to measure queue wait vs. run time; the
   pool itself stays dependency-free.  Inline execution paths (async
   from a worker or an empty pool, chunks the caller claims itself)
   bypass it: they never wait in a queue and already run in the
   submitter's context. *)
let task_hook : (task -> task) ref = ref (fun t -> t)
let set_task_hook f = task_hook := f

let enqueue_at t i task =
  let q = t.queues.(i) in
  locked q.q_mutex (fun () ->
      if Atomic.get t.shutting_down then false
      else begin
        Queue.push task q.q_tasks;
        Condition.signal q.q_cond;
        true
      end)

let submit t task =
  let task = !task_hook task in
  let w = Array.length t.queues in
  if w = 0 || on_worker t then run_task t task
  else begin
    let i = Atomic.fetch_and_add t.ticket 1 mod w in
    (* a pool racing into shutdown degrades to inline execution rather
       than dropping (or rejecting) the task *)
    if not (enqueue_at t i task) then run_task t task
  end

(* --- futures (cross-query parallelism: the serving path) --- *)

type 'a future = {
  f_mutex : Mutex.t;
  f_done : Condition.t;
  mutable f_state : 'a state;
}

and 'a state = Pending | Done of 'a | Failed of exn

let async t f =
  let fut = { f_mutex = Mutex.create (); f_done = Condition.create (); f_state = Pending } in
  let run () =
    let state = match f () with v -> Done v | exception e -> Failed e in
    locked fut.f_mutex (fun () ->
        fut.f_state <- state;
        Condition.broadcast fut.f_done)
  in
  (* nested use from a worker (or a 1-domain pool) executes inline: the
     submitting worker would otherwise occupy its slot waiting for a peer
     that may never be free — the classic fixed-pool deadlock *)
  if Array.length t.queues = 0 || on_worker t then run () else submit t run;
  fut

let await fut =
  locked fut.f_mutex (fun () ->
      let rec wait () =
        match fut.f_state with
        | Pending ->
            Condition.wait fut.f_done fut.f_mutex;
            wait ()
        | Done v -> v
        | Failed e -> raise e
      in
      wait ())

let run t f = await (async t f)

(* --- chunked fan-out (data parallelism: rescoring, segment load) ---

   Chunk geometry depends only on (n, grain, pool size): [0, n) is cut
   into ceil(n / chunk) chunks of [chunk = max grain (ceil (n / (4 *
   participants)))] elements.  ~4 chunks per participant keeps handoff
   amortized while leaving enough slack for dynamic rebalancing; which
   participant runs which chunk is decided at runtime by the atomic
   cursor and never affects the result (bodies write block-disjoint
   locations; scratch merges must be commutative). *)

let chunks_per_participant = 4

let chunk_size t ~grain ~n =
  let parts = Array.length t.queues + 1 in
  let target = parts * chunks_per_participant in
  max grain ((n + target - 1) / target)

(* Enqueue one shared helper to each of [helpers] distinct workers, one
   lock round per worker — not one queue round-trip per block like the
   old static fan-out.  Wrapped once: the submit-time context is the
   same for all of them. *)
let spawn_helpers t ~helpers work =
  let w = Array.length t.queues in
  let help = !task_hook work in
  let start = Atomic.fetch_and_add t.ticket 1 in
  for k = 0 to helpers - 1 do
    ignore (enqueue_at t ((start + k) mod w) help)
  done

type job = {
  j_fn : int -> int -> unit;
  j_n : int;
  j_chunk : int;
  j_nchunks : int;
  j_next : int Atomic.t;  (* chunk cursor *)
  j_left : int Atomic.t;  (* chunks not yet completed *)
  j_mutex : Mutex.t;
  j_finished : Condition.t;
  mutable j_failure : exn option;
}

let job_fail job e =
  locked job.j_mutex (fun () -> if job.j_failure = None then job.j_failure <- Some e)

(* Claim-and-run loop shared by the caller and every helper.  A helper
   that arrives after the cursor ran dry (its worker was busy and the
   others finished the job) is a cheap no-op. *)
let work_job job =
  let rec claim () =
    let c = Atomic.fetch_and_add job.j_next 1 in
    if c < job.j_nchunks then begin
      let lo = c * job.j_chunk in
      let hi = min job.j_n (lo + job.j_chunk) in
      (try job.j_fn lo hi with e -> job_fail job e);
      if Atomic.fetch_and_add job.j_left (-1) = 1 then
        locked job.j_mutex (fun () -> Condition.broadcast job.j_finished);
      claim ()
    end
  in
  claim ()

let parallel_for t ?(grain = 1) ~n f =
  let grain = max 1 grain in
  if n > 0 then begin
    let w = Array.length t.queues in
    (* sequential cutoff: sub-grain work (and any nested or post-shutdown
       fan-out) runs inline and never touches the queues *)
    if w = 0 || on_worker t || n <= grain then f 0 n
    else begin
      let chunk = chunk_size t ~grain ~n in
      let nchunks = (n + chunk - 1) / chunk in
      if nchunks < 2 then f 0 n
      else begin
        let job =
          {
            j_fn = f;
            j_n = n;
            j_chunk = chunk;
            j_nchunks = nchunks;
            j_next = Atomic.make 0;
            j_left = Atomic.make nchunks;
            j_mutex = Mutex.create ();
            j_finished = Condition.create ();
            j_failure = None;
          }
        in
        spawn_helpers t ~helpers:(min w (nchunks - 1)) (fun () -> work_job job);
        (* the caller claims chunks too instead of idling at the barrier *)
        work_job job;
        locked job.j_mutex (fun () ->
            while Atomic.get job.j_left > 0 do
              Condition.wait job.j_finished job.j_mutex
            done);
        match job.j_failure with Some e -> raise e | None -> ()
      end
    end
  end

(* --- scratch fan-out (per-domain private accumulators) ---

   Like {!parallel_for}, but each participant lazily allocates one
   private scratch value for all the chunks it claims and merges it into
   the shared result exactly once, under the job mutex, after the cursor
   runs dry.  Bodies therefore never write shared cache lines at all —
   the false-sharing chunk-boundary writes of a shared result array are
   gone — at the cost of one commutative merge per participant. *)

type 'acc sjob = {
  s_fn : 'acc -> int -> int -> unit;
  s_scratch : unit -> 'acc;
  s_merge : 'acc -> unit;
  s_n : int;
  s_chunk : int;
  s_nchunks : int;
  s_next : int Atomic.t;
  s_mutex : Mutex.t;
  s_finished : Condition.t;
  mutable s_chunks_done : int;
  mutable s_entered : int;  (* participants that claimed >= 1 chunk *)
  mutable s_merged : int;  (* participants whose merge has run *)
  mutable s_failure : exn option;
}

let sjob_fail job e =
  if job.s_failure = None then job.s_failure <- Some e

(* Entry is registered (under the mutex) before the participant's first
   chunk completes, so the barrier below can never observe "all chunks
   done" without also counting every participant that still owes a
   merge; and a helper that claims no chunk never enters, so no merge
   can run after the barrier releases the caller. *)
let swork job =
  let c0 = Atomic.fetch_and_add job.s_next 1 in
  if c0 < job.s_nchunks then begin
    locked job.s_mutex (fun () -> job.s_entered <- job.s_entered + 1);
    let acc =
      match job.s_scratch () with
      | a -> Some a
      | exception e ->
          locked job.s_mutex (fun () -> sjob_fail job e);
          None
    in
    let run_chunk c =
      let lo = c * job.s_chunk in
      let hi = min job.s_n (lo + job.s_chunk) in
      (match acc with
      | Some a -> ( try job.s_fn a lo hi with e -> locked job.s_mutex (fun () -> sjob_fail job e))
      | None -> ());
      locked job.s_mutex (fun () -> job.s_chunks_done <- job.s_chunks_done + 1)
    in
    run_chunk c0;
    let rec claim () =
      let c = Atomic.fetch_and_add job.s_next 1 in
      if c < job.s_nchunks then begin
        run_chunk c;
        claim ()
      end
    in
    claim ();
    locked job.s_mutex (fun () ->
        (match acc with
        | Some a -> ( try job.s_merge a with e -> sjob_fail job e)
        | None -> ());
        job.s_merged <- job.s_merged + 1;
        if job.s_chunks_done = job.s_nchunks && job.s_merged = job.s_entered then
          Condition.broadcast job.s_finished)
  end

let parallel_for_scratch t ?(grain = 1) ~n ~scratch ~merge body =
  let grain = max 1 grain in
  if n > 0 then begin
    let w = Array.length t.queues in
    let inline () =
      let acc = scratch () in
      body acc 0 n;
      merge acc
    in
    if w = 0 || on_worker t || n <= grain then inline ()
    else begin
      let chunk = chunk_size t ~grain ~n in
      let nchunks = (n + chunk - 1) / chunk in
      if nchunks < 2 then inline ()
      else begin
        let job =
          {
            s_fn = body;
            s_scratch = scratch;
            s_merge = merge;
            s_n = n;
            s_chunk = chunk;
            s_nchunks = nchunks;
            s_next = Atomic.make 0;
            s_mutex = Mutex.create ();
            s_finished = Condition.create ();
            s_chunks_done = 0;
            s_entered = 0;
            s_merged = 0;
            s_failure = None;
          }
        in
        spawn_helpers t ~helpers:(min w (nchunks - 1)) (fun () -> swork job);
        swork job;
        locked job.s_mutex (fun () ->
            while not (job.s_chunks_done = job.s_nchunks && job.s_merged = job.s_entered) do
              Condition.wait job.s_finished job.s_mutex
            done);
        match job.s_failure with Some e -> raise e | None -> ()
      end
    end
  end

let map_array t ?grain f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* element 0 seeds the output array on the caller (no Option boxing);
       the fan-out covers the rest *)
    let out = Array.make n (f arr.(0)) in
    if n > 1 then
      parallel_for t ?grain ~n:(n - 1) (fun lo hi ->
          for i = lo + 1 to hi do
            out.(i) <- f arr.(i)
          done);
    out
  end
