type task = unit -> unit

(* One shared FIFO guarded by a mutex: work is only ever *assigned*
   statically (parallel_for hands each participant one contiguous block,
   submit enqueues whole tasks), so there is nothing to steal and the
   queue never sees contention beyond enqueue/dequeue handoff.  The
   mutex acquire/release pairs on both sides of every handoff establish
   the happens-before edges that publish task results across domains. *)
type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when a task or shutdown arrives *)
  queue : task Queue.t;
  mutable workers : Domain.id array;  (* ids of spawned worker domains *)
  mutable handles : unit Domain.t array;
  mutable shutting_down : bool;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let rec worker_loop pool =
  let job =
    locked pool.mutex (fun () ->
        let rec wait () =
          if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
          else if pool.shutting_down then None
          else begin
            Condition.wait pool.work pool.mutex;
            wait ()
          end
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some task ->
      (* a task must never let an exception kill the worker; failures are
         captured by the wrapper and re-raised at the caller's barrier *)
      (try task () with _ -> ());
      worker_loop pool

let default_domains () = max 1 (Domain.recommended_domain_count ())

let create ?domains () =
  let n = match domains with Some d when d > 0 -> d | _ -> default_domains () in
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      workers = [||];
      handles = [||];
      shutting_down = false;
    }
  in
  (* the caller's domain participates as block 0; spawn n-1 helpers *)
  let handles = Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool)) in
  pool.handles <- handles;
  pool.workers <- Array.map Domain.get_id handles;
  pool

let size t = Array.length t.handles + 1

let shutdown t =
  locked t.mutex (fun () ->
      t.shutting_down <- true;
      Condition.broadcast t.work);
  Array.iter Domain.join t.handles;
  t.handles <- [||];
  t.workers <- [||]

(* An optional wrapper applied to every queued task at submit time, on
   the submitting thread.  Sbi_obs installs one to propagate trace
   context across domains and to measure queue wait vs. run time; the
   pool itself stays dependency-free.  Inline execution paths (async
   from a worker or an empty pool, the caller's own parallel_for block)
   bypass it: they never wait in the queue and already run in the
   submitter's context. *)
let task_hook : (task -> task) ref = ref (fun t -> t)
let set_task_hook f = task_hook := f

let submit t task =
  let task = !task_hook task in
  locked t.mutex (fun () ->
      if t.shutting_down then invalid_arg "Domain_pool: submitted to a shut-down pool";
      Queue.push task t.queue;
      Condition.signal t.work)

let on_worker t =
  let self = Domain.self () in
  Array.exists (fun id -> id = self) t.workers

(* --- futures (cross-query parallelism: the serving path) --- *)

type 'a future = {
  f_mutex : Mutex.t;
  f_done : Condition.t;
  mutable f_state : 'a state;
}

and 'a state = Pending | Done of 'a | Failed of exn

let async t f =
  let fut = { f_mutex = Mutex.create (); f_done = Condition.create (); f_state = Pending } in
  let run () =
    let state = match f () with v -> Done v | exception e -> Failed e in
    locked fut.f_mutex (fun () ->
        fut.f_state <- state;
        Condition.broadcast fut.f_done)
  in
  (* nested use from a worker (or a 1-domain pool) executes inline: the
     submitting worker would otherwise occupy its slot waiting for a peer
     that may never be free — the classic fixed-pool deadlock *)
  if Array.length t.handles = 0 || on_worker t then run () else submit t run;
  fut

let await fut =
  locked fut.f_mutex (fun () ->
      let rec wait () =
        match fut.f_state with
        | Pending ->
            Condition.wait fut.f_done fut.f_mutex;
            wait ()
        | Done v -> v
        | Failed e -> raise e
      in
      wait ())

let run t f = await (async t f)

(* --- static block fan-out (data parallelism: rescoring, segment load) --- *)

(* Contiguous blocks, one per participant, exactly like
   Par_collect.blocks: block boundaries depend only on (n, participants),
   so the work assignment — and with disjoint writes, the result — is
   deterministic for any pool size. *)
let blocks ~n ~participants =
  let participants = max 1 (min participants (max n 1)) in
  let per = n / participants and rem = n mod participants in
  List.init participants (fun d ->
      let lo = (d * per) + min d rem in
      (lo, lo + per + (if d < rem then 1 else 0)))

let parallel_for t ~n f =
  if n > 0 then begin
    let inline = Array.length t.handles = 0 || on_worker t in
    if inline then f 0 n
    else begin
      match blocks ~n ~participants:(size t) with
      | [] -> ()
      | (lo0, hi0) :: rest ->
          let pending = ref (List.length rest) in
          let failure = ref None in
          let barrier = Condition.create () in
          let barrier_mutex = Mutex.create () in
          List.iter
            (fun (lo, hi) ->
              submit t (fun () ->
                  let outcome = match f lo hi with () -> None | exception e -> Some e in
                  locked barrier_mutex (fun () ->
                      (match (outcome, !failure) with
                      | Some e, None -> failure := Some e
                      | _ -> ());
                      decr pending;
                      if !pending = 0 then Condition.broadcast barrier)))
            rest;
          (* the caller works its own block instead of idling at the barrier *)
          f lo0 hi0;
          locked barrier_mutex (fun () ->
              while !pending > 0 do
                Condition.wait barrier barrier_mutex
              done);
          match !failure with Some e -> raise e | None -> ()
    end
  end

let map_array t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ~n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end
