(** Retry with jittered exponential backoff.

    The delay before attempt [k+1] is
    [base_delay_ms * 2^(k-1)], capped at [max_delay_ms], then scaled by a
    uniform factor in [[1 - jitter, 1 + jitter]] drawn from a seeded
    {!Sbi_util.Prng} — so concurrent clients retrying the same dead
    server don't stampede in lockstep, yet a given policy + seed always
    produces the same schedule (reproducible tests). *)

type policy = {
  max_attempts : int;  (** total attempts, including the first; >= 1 *)
  base_delay_ms : int;  (** backoff before the second attempt *)
  max_delay_ms : int;  (** cap on any single delay *)
  jitter : float;  (** relative jitter in [0, 1] *)
  seed : int;
}

val default : policy
(** 3 attempts, 50 ms base, 2 s cap, 0.25 jitter. *)

val no_retry : policy
(** A single attempt; {!run} never sleeps. *)

val delays_ms : policy -> int list
(** The exact jittered delays {!run} would sleep between attempts, in
    order ([max_attempts - 1] entries). *)

val run :
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay_ms:int -> string -> unit) ->
  policy ->
  (unit -> ('a, [ `Retry of string | `Fatal of string ]) result) ->
  ('a, string) result
(** [run policy f] calls [f] up to [max_attempts] times.  [`Retry msg]
    sleeps the next backoff delay and tries again ([on_retry] is told);
    [`Fatal msg] and exhausted attempts return [Error].  [sleep]
    defaults to [Unix.sleepf] (takes seconds) and exists so tests can
    run schedules without wall-clock time. *)
