type policy = {
  max_attempts : int;
  base_delay_ms : int;
  max_delay_ms : int;
  jitter : float;
  seed : int;
}

let default =
  { max_attempts = 3; base_delay_ms = 50; max_delay_ms = 2_000; jitter = 0.25; seed = 0 }

let no_retry = { default with max_attempts = 1 }

let delay_ms prng policy attempt =
  (* attempt is 1-based: the delay slept after attempt [attempt] fails. *)
  let exp = min (attempt - 1) 30 in
  let raw = float_of_int policy.base_delay_ms *. Float.of_int (1 lsl exp) in
  let capped = Float.min raw (float_of_int policy.max_delay_ms) in
  let jittered =
    if policy.jitter <= 0. then capped
    else
      let spread = 2. *. policy.jitter *. Sbi_util.Prng.unit_float prng in
      capped *. (1. -. policy.jitter +. spread)
  in
  int_of_float (Float.max 0. jittered)

let delays_ms policy =
  let prng = Sbi_util.Prng.create policy.seed in
  List.init (max 0 (policy.max_attempts - 1)) (fun i -> delay_ms prng policy (i + 1))

let run ?(sleep = Unix.sleepf) ?(on_retry = fun ~attempt:_ ~delay_ms:_ _ -> ()) policy f =
  if policy.max_attempts < 1 then invalid_arg "Retry.run: max_attempts must be >= 1";
  let prng = Sbi_util.Prng.create policy.seed in
  let rec go attempt =
    match f () with
    | Ok v -> Ok v
    | Error (`Fatal msg) -> Error msg
    | Error (`Retry msg) when attempt >= policy.max_attempts ->
        Error (Printf.sprintf "%s (after %d attempts)" msg policy.max_attempts)
    | Error (`Retry msg) ->
        let d = delay_ms prng policy attempt in
        on_retry ~attempt ~delay_ms:d msg;
        if d > 0 then sleep (float_of_int d /. 1000.);
        go (attempt + 1)
  in
  go 1
