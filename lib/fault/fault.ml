type kind =
  | Torn_write
  | Short_read
  | Eintr
  | Eagain
  | Fsync_fail
  | Disk_full
  | Bit_flip
  | Conn_reset

let kind_to_string = function
  | Torn_write -> "torn_write"
  | Short_read -> "short_read"
  | Eintr -> "eintr"
  | Eagain -> "eagain"
  | Fsync_fail -> "fsync_fail"
  | Disk_full -> "disk_full"
  | Bit_flip -> "bit_flip"
  | Conn_reset -> "conn_reset"

let all_kinds =
  [ Torn_write; Short_read; Eintr; Eagain; Fsync_fail; Disk_full; Bit_flip; Conn_reset ]

exception Crash of string

type spec = {
  seed : int;
  p_torn_write : float;
  p_short_read : float;
  p_eintr : float;
  p_eagain : float;
  p_fsync_fail : float;
  p_disk_full : float;
  p_bit_flip : float;
  p_conn_reset : float;
  kill_at_write : int option;
  max_faults : int;
}

let quiet =
  {
    seed = 0;
    p_torn_write = 0.;
    p_short_read = 0.;
    p_eintr = 0.;
    p_eagain = 0.;
    p_fsync_fail = 0.;
    p_disk_full = 0.;
    p_bit_flip = 0.;
    p_conn_reset = 0.;
    kill_at_write = None;
    max_faults = 0;
  }

let kill_at ?(seed = 0) n =
  if n < 1 then invalid_arg "Fault.kill_at: write number is 1-based";
  { quiet with seed; kill_at_write = Some n }

let with_p ?(seed = 0) ps =
  List.fold_left
    (fun spec (kind, p) ->
      if p < 0. || p > 1. then invalid_arg "Fault.with_p: probability out of [0,1]";
      match kind with
      | Torn_write -> { spec with p_torn_write = p }
      | Short_read -> { spec with p_short_read = p }
      | Eintr -> { spec with p_eintr = p }
      | Eagain -> { spec with p_eagain = p }
      | Fsync_fail -> { spec with p_fsync_fail = p }
      | Disk_full -> { spec with p_disk_full = p }
      | Bit_flip -> { spec with p_bit_flip = p }
      | Conn_reset -> { spec with p_conn_reset = p })
    { quiet with seed } ps

type t = {
  spec : spec;
  prng : Sbi_util.Prng.t;
  lock : Mutex.t;
  mutable writes : int;
  counts : int array;  (* indexed by kind order in all_kinds *)
}

let kind_index = function
  | Torn_write -> 0
  | Short_read -> 1
  | Eintr -> 2
  | Eagain -> 3
  | Fsync_fail -> 4
  | Disk_full -> 5
  | Bit_flip -> 6
  | Conn_reset -> 7

let create spec =
  {
    spec;
    prng = Sbi_util.Prng.create spec.seed;
    lock = Mutex.create ();
    writes = 0;
    counts = Array.make (List.length all_kinds) 0;
  }

let spec t = t.spec

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let writes_seen t = locked t (fun () -> t.writes)

let injected t =
  locked t (fun () ->
      List.filter_map
        (fun k ->
          let n = t.counts.(kind_index k) in
          if n > 0 then Some (k, n) else None)
        all_kinds)

let total_injected t = locked t (fun () -> Array.fold_left ( + ) 0 t.counts)

(* Every helper below runs under [t.lock]. *)

let budget_left t =
  t.spec.max_faults <= 0 || Array.fold_left ( + ) 0 t.counts < t.spec.max_faults

let fire t kind = t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1

let draw t p = p > 0. && Sbi_util.Prng.bernoulli t.prng p

(* A torn or disk-full prefix keeps at least 0 and at most len-1 bytes, so
   the damage is always observable. *)
let prefix_len t len = if len <= 1 then 0 else Sbi_util.Prng.int t.prng len

let on_write t ~len =
  locked t (fun () ->
      t.writes <- t.writes + 1;
      match t.spec.kill_at_write with
      | Some n when t.writes = n ->
          fire t Torn_write;
          `Torn (prefix_len t len)
      | _ ->
          if not (budget_left t) then `Ok
          else if draw t t.spec.p_torn_write then begin
            fire t Torn_write;
            `Torn (prefix_len t len)
          end
          else if draw t t.spec.p_disk_full then begin
            fire t Disk_full;
            `Disk_full (prefix_len t len)
          end
          else `Ok)

let on_read t ~len =
  locked t (fun () ->
      if not (budget_left t) then `Ok
      else if len > 1 && draw t t.spec.p_short_read then begin
        fire t Short_read;
        `Short (1 + Sbi_util.Prng.int t.prng (len - 1))
      end
      else if len > 0 && draw t t.spec.p_bit_flip then begin
        fire t Bit_flip;
        `Bit_flip (Sbi_util.Prng.int t.prng len)
      end
      else `Ok)

let on_fsync t =
  locked t (fun () ->
      if budget_left t && draw t t.spec.p_fsync_fail then begin
        fire t Fsync_fail;
        `Fail
      end
      else `Ok)

let on_sock_read t ~len =
  locked t (fun () ->
      if not (budget_left t) then `Ok
      else if draw t t.spec.p_conn_reset then begin
        fire t Conn_reset;
        `Reset
      end
      else if draw t t.spec.p_eintr then begin
        fire t Eintr;
        `Eintr
      end
      else if draw t t.spec.p_eagain then begin
        fire t Eagain;
        `Eagain
      end
      else if len > 1 && draw t t.spec.p_short_read then begin
        fire t Short_read;
        `Short (1 + Sbi_util.Prng.int t.prng (len - 1))
      end
      else `Ok)

let on_sock_write t ~len =
  locked t (fun () ->
      if not (budget_left t) then `Ok
      else if draw t t.spec.p_conn_reset then begin
        fire t Conn_reset;
        `Reset
      end
      else if draw t t.spec.p_eintr then begin
        fire t Eintr;
        `Eintr
      end
      else if draw t t.spec.p_eagain then begin
        fire t Eagain;
        `Eagain
      end
      else if len > 1 && draw t t.spec.p_torn_write then begin
        fire t Torn_write;
        `Partial (1 + Sbi_util.Prng.int t.prng (len - 1))
      end
      else `Ok)

let on_conn t =
  locked t (fun () ->
      if budget_left t && draw t t.spec.p_conn_reset then begin
        fire t Conn_reset;
        `Reset
      end
      else `Ok)
