type t = Fault.t option

let none = None
let faulty f = Some f
let fault t = t

(* --- buffered file writing --- *)

type out_file = {
  oc : out_channel;
  io : Fault.t option;
  path : string;
  mutable closed : bool;
}

let open_out ?(io = none) ?(append = false) path =
  let oc =
    if append then
      Stdlib.open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
    else open_out_bin path
  in
  { oc; io; path; closed = false }
let out_path f = f.path

let output_string f s =
  match f.io with
  | None -> Stdlib.output_string f.oc s
  | Some inj -> (
      let len = String.length s in
      match Fault.on_write inj ~len with
      | `Ok -> Stdlib.output_string f.oc s
      | `Torn k ->
          (* the prefix reaches the file (the kernel had it); everything
             after is lost with the process *)
          Stdlib.output_substring f.oc s 0 k;
          Stdlib.flush f.oc;
          raise
            (Fault.Crash (Printf.sprintf "torn write (%d/%d bytes) to %s" k len f.path))
      | `Disk_full k ->
          Stdlib.output_substring f.oc s 0 k;
          Stdlib.flush f.oc;
          raise (Unix.Unix_error (Unix.ENOSPC, "write", f.path)))

let output_buffer f buf = output_string f (Buffer.contents buf)
let flush f = Stdlib.flush f.oc

let fsync f =
  Stdlib.flush f.oc;
  match f.io with
  | None -> Unix.fsync (Unix.descr_of_out_channel f.oc)
  | Some inj -> (
      match Fault.on_fsync inj with
      | `Ok -> Unix.fsync (Unix.descr_of_out_channel f.oc)
      | `Fail -> raise (Unix.Unix_error (Unix.EIO, "fsync", f.path)))

let close_out f =
  if not f.closed then begin
    f.closed <- true;
    Stdlib.close_out f.oc
  end

let abandon_out f =
  if not f.closed then begin
    f.closed <- true;
    (* close the fd underneath the channel so its buffered bytes never
       reach the file — a killed process loses exactly this data *)
    (try Unix.close (Unix.descr_of_out_channel f.oc) with Unix.Unix_error _ -> ());
    try Stdlib.close_out_noerr f.oc with _ -> ()
  end

(* --- whole-file operations --- *)

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let damage io s =
  match io with
  | None -> s
  | Some inj -> (
      match Fault.on_read inj ~len:(String.length s) with
      | `Ok -> s
      | `Short k -> String.sub s 0 k
      | `Bit_flip i ->
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (i mod 8))));
          Bytes.unsafe_to_string b)

let read_file ?(io = none) path = damage io (read_raw path)

let file_size path = (Unix.stat path).Unix.st_size

let read_sub ?(io = none) path ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Io.read_sub";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      seek_in ic pos;
      damage io (really_input_string ic len))

let write_file_atomic ?(io = none) path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let f = open_out ~io tmp in
  (match output_string f content with
  | () -> close_out f
  | exception (Fault.Crash _ as e) ->
      (* a killed process leaves its temp file behind — recovery tooling
         must cope with (and clean) strays, so don't hide them here *)
      close_out f;
      raise e
  | exception e ->
      close_out f;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

(* --- socket operations --- *)

let fd_read ?(io = none) fd buf pos len =
  match io with
  | None -> Unix.read fd buf pos len
  | Some inj -> (
      match Fault.on_sock_read inj ~len with
      | `Ok -> Unix.read fd buf pos len
      | `Short k -> Unix.read fd buf pos (min k len)
      | `Eintr -> raise (Unix.Unix_error (Unix.EINTR, "read", ""))
      | `Eagain -> raise (Unix.Unix_error (Unix.EAGAIN, "read", ""))
      | `Reset -> raise (Unix.Unix_error (Unix.ECONNRESET, "read", "")))

let fd_write ?(io = none) fd buf pos len =
  match io with
  | None -> Unix.write fd buf pos len
  | Some inj -> (
      match Fault.on_sock_write inj ~len with
      | `Ok -> Unix.write fd buf pos len
      | `Partial k -> Unix.write fd buf pos (min k len)
      | `Eintr -> raise (Unix.Unix_error (Unix.EINTR, "write", ""))
      | `Eagain -> raise (Unix.Unix_error (Unix.EAGAIN, "write", ""))
      | `Reset -> raise (Unix.Unix_error (Unix.ECONNRESET, "write", "")))
