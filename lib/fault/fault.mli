(** Deterministic fault injector.

    A {!t} is a seeded source of injection decisions that {!Io} consults
    on every wrapped file or socket operation.  Faults fire either with a
    configured per-operation probability or at an exact operation count
    ([kill_at_write]: "die at write #N"), so a failing schedule is always
    reproducible from its {!spec}.

    The injector never touches I/O itself: it only decides, counts, and
    (for the kill switch) raises {!Crash} through {!Io} at the moment the
    simulated process dies. *)

type kind =
  | Torn_write  (** only a prefix of the buffer reaches the file, then {!Crash} *)
  | Short_read  (** a read returns fewer bytes than asked *)
  | Eintr  (** a syscall fails with [EINTR] *)
  | Eagain  (** a socket op times out with [EAGAIN] *)
  | Fsync_fail  (** [fsync] fails with [EIO] *)
  | Disk_full  (** a write fails with [ENOSPC] after a partial prefix *)
  | Bit_flip  (** one bit of the data read is flipped *)
  | Conn_reset  (** a socket op fails with [ECONNRESET] *)

val kind_to_string : kind -> string
val all_kinds : kind list

exception Crash of string
(** Simulated process death.  Callers that model a kill-and-reopen cycle
    catch this at the top of their workload; ordinary code must {e not}
    catch it (a real [SIGKILL] would not be catchable either), which is
    what lets the crash-recovery driver observe the exact on-disk state a
    dead process leaves behind. *)

type spec = {
  seed : int;  (** PRNG seed; same spec => same schedule *)
  p_torn_write : float;
  p_short_read : float;
  p_eintr : float;
  p_eagain : float;
  p_fsync_fail : float;
  p_disk_full : float;
  p_bit_flip : float;
  p_conn_reset : float;
  kill_at_write : int option;
      (** crash (with a torn prefix) at exactly the Nth wrapped write,
          1-based, counted across every file the injector is attached to *)
  max_faults : int;  (** stop injecting after this many faults; [0] = unlimited *)
}

val quiet : spec
(** All probabilities zero, no kill point: a spec that never fires. *)

val kill_at : ?seed:int -> int -> spec
(** [kill_at n]: die with a torn write at exactly write #n. *)

val with_p : ?seed:int -> (kind * float) list -> spec
(** [quiet] plus the given per-kind probabilities. *)

type t

val create : spec -> t
val spec : t -> spec

val writes_seen : t -> int
(** Wrapped write operations observed so far (the clock [kill_at_write]
    is measured on). *)

val injected : t -> (kind * int) list
(** Faults fired so far, per kind (only non-zero entries). *)

val total_injected : t -> int

(** {1 Decision points}

    Called by {!Io} once per wrapped operation.  Each returns what the
    operation should do; thread-safe (one lock per draw, never taken on
    the passthrough path because passthrough code has no injector). *)

val on_write : t -> len:int -> [ `Ok | `Torn of int | `Disk_full of int ]
(** File writes (these advance the [kill_at_write] clock).  [`Torn k] /
    [`Disk_full k]: only the first [k < len] bytes reach the file; torn
    writes then raise {!Crash}, disk-full surfaces [ENOSPC]. *)

val on_read : t -> len:int -> [ `Ok | `Short of int | `Bit_flip of int ]
(** File reads.  [`Short k]: deliver only the first [k < len] bytes (a
    truncated read).  [`Bit_flip i]: flip one bit of byte [i] of the data
    delivered (media corruption). *)

val on_fsync : t -> [ `Ok | `Fail ]

val on_sock_read : t -> len:int -> [ `Ok | `Short of int | `Eintr | `Eagain | `Reset ]
(** Socket reads.  [`Short k] is benign (correct callers loop);
    [`Eintr] likewise; [`Eagain] models a receive deadline expiring;
    [`Reset] is a dropped connection. *)

val on_sock_write : t -> len:int -> [ `Ok | `Partial of int | `Eintr | `Eagain | `Reset ]
(** Socket writes.  [`Partial k] sends only [k >= 1] bytes (benign:
    correct callers loop); probabilities reuse [p_torn_write]. *)

val on_conn : t -> [ `Ok | `Reset ]
(** Connection establishment / teardown. *)
