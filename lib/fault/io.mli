(** Fault-injectable I/O.

    Every durability and network path in the system funnels its file and
    socket operations through this module.  Passed [Io.none] (the
    default everywhere), each operation is a direct passthrough to the
    stdlib/Unix call — one [match] on an immutable [option], no
    allocation.  Passed {!faulty}, each operation first consults the
    {!Fault} injector and may deliver a torn write, a short read, a
    failed fsync, [ENOSPC], a flipped bit, [EINTR]/[EAGAIN], a
    connection reset, or a simulated process death ({!Fault.Crash}). *)

type t

val none : t
(** Zero-cost passthrough. *)

val faulty : Fault.t -> t

val fault : t -> Fault.t option
(** The injector behind [t], if any. *)

(** {1 Buffered file writing} *)

type out_file

val open_out : ?io:t -> ?append:bool -> string -> out_file
(** [open_out_bin]; truncates, unless [append] (default false) — then the
    file is opened (created if absent) positioned at its end. *)

val output_string : out_file -> string -> unit
(** Torn write: the prefix is flushed to the file, then {!Fault.Crash}.
    Disk full: the prefix is flushed, then [Unix_error (ENOSPC, _, _)]. *)

val output_buffer : out_file -> Buffer.t -> unit
val flush : out_file -> unit

val fsync : out_file -> unit
(** Flush then [Unix.fsync]; an injected failure raises
    [Unix_error (EIO, "fsync", path)] — the caller must not acknowledge
    the data as durable. *)

val close_out : out_file -> unit

val abandon_out : out_file -> unit
(** Close the underlying descriptor {e without} flushing: any bytes
    still sitting in the channel buffer are discarded, exactly as if
    the process had been killed.  Crash simulations use this to model
    losing un-fsynced, un-flushed appends. *)

val out_path : out_file -> string

(** {1 Whole-file operations} *)

val read_file : ?io:t -> string -> string
(** Reads the whole file; an injected short read returns a prefix, an
    injected bit flip corrupts one bit — consumers are expected to
    detect both via CRCs/framing. *)

val file_size : string -> int
(** Size in bytes ([Unix.stat]); raises [Unix_error] if absent. *)

val read_sub : ?io:t -> string -> pos:int -> len:int -> string
(** Read [len] bytes at byte offset [pos] — the lazy segment loader's
    footer/posting reads.  Injected faults behave as in {!read_file}.
    Raises [End_of_file] if the file ends before [pos + len]. *)

val write_file_atomic : ?io:t -> string -> string -> unit
(** Write to a temp file in the target's directory, then rename.  On
    {!Fault.Crash} the temp file is {e left behind} (a killed process
    cannot clean up); on any other error it is removed. *)

(** {1 Socket operations} *)

val fd_read : ?io:t -> Unix.file_descr -> Bytes.t -> int -> int -> int
(** As [Unix.read].  Injected: short reads (benign), [EINTR], [EAGAIN]
    (deadline), [ECONNRESET]. *)

val fd_write : ?io:t -> Unix.file_descr -> Bytes.t -> int -> int -> int
(** As [Unix.write].  Injected: partial writes (benign — loop), [EINTR],
    [EAGAIN] (deadline), [ECONNRESET]. *)
