(** Fixed-size mutable bitsets over run slots.

    The query engine keys every per-segment run property (failing, alive
    during elimination, covered by a predicate) on a bitset indexed by
    the run's position within its segment, so counting a §3.1 quantity
    over the current run subset is a handful of word-level popcount
    kernels — no report records are ever materialized, and no per-bit
    loop runs on the hot path.

    Bits beyond [length] are kept zero by every operation (including
    {!full}), so the counting kernels can fold whole words blindly. *)

type t

val create : int -> t
(** All bits clear. *)

val full : int -> t
(** All bits set. *)

val copy : t -> t
val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val popcount : int -> int
(** Set bits of one word (branch-free SWAR over OCaml's 63-bit ints);
    the primitive under every counting kernel below. *)

val count : t -> int
(** Number of set bits. *)

val inter_count : t -> t -> int
(** [inter_count a b]: set bits of [a ∧ b], one popcount per word.
    @raise Invalid_argument on length mismatch. *)

val count_and : t -> t -> int
(** Alias of {!inter_count} (the pre-kernel name). *)

val inter_count3 : t -> t -> t -> int
(** [inter_count3 a b c]: set bits of [a ∧ b ∧ c] without materializing
    an intermediate — the elimination loop's [F(P)-over-alive-failing]
    kernel.  @raise Invalid_argument on length mismatch. *)

val diff_inplace : t -> t -> unit
(** [diff_inplace a b]: [a := a ∧ ¬b] (discard proposal 1's run removal).
    @raise Invalid_argument on length mismatch. *)

val diff_inter_inplace : t -> t -> t -> unit
(** [diff_inter_inplace a b c]: [a := a ∧ ¬(b ∧ c)] (proposals 2/3:
    remove/relabel only where both masks agree).
    @raise Invalid_argument on length mismatch. *)

val of_positions : int -> int array -> t
(** [of_positions n ps]: bits [ps] set in a bitset of length [n]. *)

val words : t -> int array
(** The backing word array, [Sys.int_size] bits per word, LSB-first.
    Exposed for the {!Rbitmap} kernels, which operate word-aligned
    against dense masks; treat as read-only unless you own the bitset. *)
