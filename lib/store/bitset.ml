type t = { words : int array; len : int }

let bits_per_word = Sys.int_size
let nwords len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { words = Array.make (max 1 (nwords len)) 0; len }

let full len =
  let t = create len in
  let nw = nwords len in
  for w = 0 to nw - 1 do
    t.words.(w) <- -1
  done;
  (* mask the partial final word so count/fold kernels never see bits
     beyond [len] *)
  let tail = len mod bits_per_word in
  if nw > 0 && tail > 0 then t.words.(nw - 1) <- (1 lsl tail) - 1;
  t

let copy t = { words = Array.copy t.words; len = t.len }
let length t = t.len

let check t i = if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

(* SWAR popcount over OCaml's 63-bit words.  The masks cannot be written
   as literals (0x5555555555555555 > max_int on 64-bit), so they are
   assembled from 32-bit halves; [lsl] silently drops the high bit, which
   is exactly the truncation we want. *)
let m1 = 0x55555555 lor (0x55555555 lsl 32)
let m2 = 0x33333333 lor (0x33333333 lsl 32)
let m4 = 0x0F0F0F0F lor (0x0F0F0F0F lsl 32)

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  let x = x + (x lsr 8) in
  let x = x + (x lsr 16) in
  let x = x + (x lsr 32) in
  x land 0x7F

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let check_pair name a b = if a.len <> b.len then invalid_arg (name ^ ": length mismatch")

let inter_count a b =
  check_pair "Bitset.inter_count" a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let count_and = inter_count

let inter_count3 a b c =
  check_pair "Bitset.inter_count3" a b;
  check_pair "Bitset.inter_count3" a c;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i) land c.words.(i))
  done;
  !acc

let diff_inplace a b =
  check_pair "Bitset.diff_inplace" a b;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- a.words.(i) land lnot b.words.(i)
  done

let diff_inter_inplace a b c =
  check_pair "Bitset.diff_inter_inplace" a b;
  check_pair "Bitset.diff_inter_inplace" a c;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- a.words.(i) land lnot (b.words.(i) land c.words.(i))
  done

let of_positions len ps =
  let t = create len in
  Array.iter (fun p -> set t p) ps;
  t

let words t = t.words
