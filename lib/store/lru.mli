(** Thread-safe LRU cache with a cost budget.

    Backs the lazy segment loader: materialized posting bitmaps are
    cached under a [(segment, kind, id)] key with
    {!Rbitmap.memory_words} as cost, so an arbitrarily large index
    works in bounded memory and repeated triage queries stay warm.

    Loads run outside the internal lock: concurrent misses on one key
    may duplicate the load (last insert wins, both callers get a valid
    value) — preferable to serializing every reader behind a disk
    read. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  used : int;  (** summed cost of resident entries *)
  entries : int;
}

val create : ?budget:int -> cost:('v -> int) -> unit -> ('k, 'v) t
(** [budget] bounds the summed cost of resident values (default [2^22],
    ~32 MB when cost is heap words).  Least-recently-used entries are
    evicted when an insert exceeds it.
    @raise Invalid_argument when [budget <= 0]. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
val stats : ('k, 'v) t -> stats
val clear : ('k, 'v) t -> unit
