(** One immutable index segment: the inverted view of one or more
    contiguous byte ranges of source shard files.

    A segment holds, for a batch of runs, the run-id array, a failing-run
    bitmap, per-site observation posting lists, and per-predicate
    observed-true posting lists — everything the triage queries need,
    with no per-run report records.  Posting lists store {e positions}
    within the segment (0 .. nruns-1), strictly increasing, so they
    delta-encode to roughly one byte per entry with {!Sbi_ingest.Codec}
    varints; the run-id array maps positions back to global run ids.

    {b Format v2} (written by {!encode}) appends a footer after the
    posting heap: the segment's §3.1 failure splits (num_f, per-predicate
    and per-site failing counts) and a posting directory (count + byte
    length per list), then a fixed 16-byte trailer [footer offset (8 LE) |
    footer CRC-32 (4 LE) | file CRC-32 (4 LE)].  A reader can therefore
    open a segment with three small reads — header, trailer, footer —
    and fetch individual postings on demand ({!read_footer},
    {!read_posting}); the tiered index uses this to keep million-run
    indexes out of memory.  The trailing file CRC covers every byte
    between the magic and itself, exactly as in format v1, so a damaged
    segment is still detected as a unit by {!decode}.  {!decode} accepts
    both versions; {!encode_v1} remains for compatibility tests. *)

exception Corrupt of string

val magic : string
val format_version : int

val trailer_len : int
(** Bytes of fixed trailer in a v2 segment file. *)

type t = {
  source_shard : int;  (** shard index this segment was compiled from *)
  start_off : int;  (** first source byte consumed (inclusive) *)
  end_off : int;  (** last source byte consumed (exclusive) *)
  nsites : int;
  npreds : int;
  nruns : int;
  run_ids : int array;  (** position -> global run id *)
  failing : Bitset.t;  (** position bit set iff the run failed *)
  site_obs : int array array;  (** site -> sorted positions observed *)
  pred_true : int array array;  (** pred -> sorted positions observed true *)
}

val of_reports :
  nsites:int ->
  npreds:int ->
  source_shard:int ->
  start_off:int ->
  end_off:int ->
  Sbi_runtime.Report.t array ->
  t
(** Invert a report batch.  @raise Invalid_argument when a report refers
    to a site or predicate outside the declared tables. *)

val aggregator : pred_site:int array -> t -> Sbi_ingest.Aggregator.t
(** The segment's §3.1 partial aggregate, recovered from the inverted
    lists — equal to folding the source reports through
    {!Sbi_ingest.Aggregator.observe}. *)

val concat : t list -> t
(** Position-shifted concatenation, in list order — the compaction merge.
    Run ids, outcomes and postings are carried over verbatim (no
    deduplication), so every triage aggregate over the merged segment is
    bit-identical to the sum over its inputs.  The provenance triple is
    zeroed: a merged segment's coverage lives in the index manifest.
    @raise Invalid_argument on empty input or mismatched
    site/predicate tables. *)

val concat_n : load:(int -> t) -> int -> t
(** {!concat} over members [load 0 .. load (n-1)], decoding on demand:
    [load] is called twice per member (a sizing pass, then a fill pass),
    so only one member is live at a time on top of the merged output —
    the constant-memory shape large compactions need.  [load] must
    return the same segment both times.
    @raise Invalid_argument as {!concat}, or when a member changes
    between the passes. *)

val encode : t -> string
(** Serialize in format v2 (footer + trailer). *)

val encode_v1 : t -> string
(** Serialize in the legacy footerless format (still decodable). *)

val decode : string -> t
(** Full verifying decode of either format.
    @raise Corrupt on bad magic/version, CRC mismatch, or any structural
    violation (positions out of range or non-increasing, footer
    inconsistent with the body). *)

(** {1 Lazy access (v2)}

    These read only the bytes they need via {!Sbi_fault.Io.read_sub};
    they never load the posting heap wholesale.  All raise {!Corrupt} on
    structural damage in the bytes they do read — whole-file integrity
    checking stays with {!decode} (used by fsck). *)

type footer = {
  ft_version : int;
  ft_source_shard : int;
  ft_start_off : int;
  ft_end_off : int;
  ft_nsites : int;
  ft_npreds : int;
  ft_nruns : int;
  ft_num_f : int;  (** failing runs in this segment *)
  ft_f_pred : int array;  (** pred -> failing runs observing it true *)
  ft_f_obs_site : int array;  (** site -> failing runs observing it *)
  ft_site_dir : (int * int * int) array;  (** site -> (abs offset, bytes, count) *)
  ft_pred_dir : (int * int * int) array;  (** pred -> (abs offset, bytes, count) *)
  ft_run_ids_off : int;
  ft_bitmap_off : int;
  ft_heap_off : int;
  ft_size : int;  (** file size in bytes *)
}

val read_footer : ?io:Sbi_fault.Io.t -> string -> footer option
(** Open a segment file lazily: header + trailer + CRC-checked footer,
    three reads totalling a few hundred bytes plus the footer.  [None]
    means the file is a valid-looking v1 segment — the caller must fall
    back to a full {!decode}.  @raise Corrupt on damage. *)

val footer_aggregator : pred_site:int array -> footer -> Sbi_ingest.Aggregator.t
(** The segment's §3.1 partial aggregate reconstructed from footer
    statistics alone: successes are posting counts minus failing counts.
    Equal to [aggregator ~pred_site (decode file)]. *)

val read_failing : ?io:Sbi_fault.Io.t -> string -> footer -> Bitset.t
val read_posting : ?io:Sbi_fault.Io.t -> string -> footer -> [ `Site | `Pred ] -> int -> int array
val read_run_ids : ?io:Sbi_fault.Io.t -> string -> footer -> int array
