open Sbi_runtime
open Sbi_ingest
module Io = Sbi_fault.Io

exception Corrupt of string

let magic = "SBIX"
let format_version = 2
let trailer_len = 16 (* footer_off (8 LE) + footer CRC (4 LE) + file CRC (4 LE) *)

type t = {
  source_shard : int;
  start_off : int;
  end_off : int;
  nsites : int;
  npreds : int;
  nruns : int;
  run_ids : int array;
  failing : Bitset.t;
  site_obs : int array array;
  pred_true : int array array;
}

let of_reports ~nsites ~npreds ~source_shard ~start_off ~end_off reports =
  let nruns = Array.length reports in
  let run_ids = Array.map (fun (r : Report.t) -> r.Report.run_id) reports in
  let failing = Bitset.create nruns in
  let site_acc = Array.make (max nsites 1) [] in
  let pred_acc = Array.make (max npreds 1) [] in
  (* Postings record membership, not multiplicity (counts live in
     [true_counts]), so a site or predicate repeated within one report
     must contribute a single position — duplicates would break the
     strictly-increasing delta encoding. *)
  let push acc i pos =
    match acc.(i) with
    | hd :: _ when hd = pos -> ()
    | _ -> acc.(i) <- pos :: acc.(i)
  in
  Array.iteri
    (fun pos (r : Report.t) ->
      if Report.outcome_is_failure r.Report.outcome then Bitset.set failing pos;
      Array.iter
        (fun site ->
          if site < 0 || site >= nsites then
            invalid_arg (Printf.sprintf "Segment.of_reports: site %d out of range" site);
          push site_acc site pos)
        r.Report.observed_sites;
      Array.iter
        (fun pred ->
          if pred < 0 || pred >= npreds then
            invalid_arg (Printf.sprintf "Segment.of_reports: predicate %d out of range" pred);
          push pred_acc pred pos)
        r.Report.true_preds)
    reports;
  (* positions were consed in increasing order, so a reverse restores it *)
  let to_postings acc n = Array.init n (fun i -> Array.of_list (List.rev acc.(i))) in
  {
    source_shard;
    start_off;
    end_off;
    nsites;
    npreds;
    nruns;
    run_ids;
    failing;
    site_obs = to_postings site_acc nsites;
    pred_true = to_postings pred_acc npreds;
  }

let aggregator ~pred_site t =
  let agg = Aggregator.empty ~nsites:t.nsites ~npreds:t.npreds ~pred_site in
  let num_f = Bitset.count t.failing in
  agg.Aggregator.num_f <- num_f;
  agg.Aggregator.num_s <- t.nruns - num_f;
  let split counter_f counter_s postings =
    Array.iteri
      (fun i posting ->
        Array.iter
          (fun pos ->
            if Bitset.get t.failing pos then counter_f.(i) <- counter_f.(i) + 1
            else counter_s.(i) <- counter_s.(i) + 1)
          posting)
      postings
  in
  split agg.Aggregator.f_obs_site agg.Aggregator.s_obs_site t.site_obs;
  split agg.Aggregator.f agg.Aggregator.s t.pred_true;
  agg

(* Two passes: the first sizes every output array, the second blits each
   member's postings (position-shifted) into place.  Members are decoded
   twice but only one is live at a time on top of the output — the CPU is
   cheap varint decoding, while holding every member plus shifted copies
   at once (the naive shape) costs several times the merged size in
   allocation churn and dominates large compactions. *)
let concat_n ~load n =
  if n <= 0 then invalid_arg "Segment.concat: empty input";
  let first = load 0 in
  let nsites = first.nsites and npreds = first.npreds in
  let member_runs = Array.make n 0 in
  let site_lens = Array.make (max nsites 1) 0 in
  let pred_lens = Array.make (max npreds 1) 0 in
  let scan i (s : t) =
    if s.nsites <> nsites || s.npreds <> npreds then
      invalid_arg "Segment.concat: mismatched site/predicate tables";
    member_runs.(i) <- s.nruns;
    for j = 0 to nsites - 1 do
      site_lens.(j) <- site_lens.(j) + Array.length s.site_obs.(j)
    done;
    for j = 0 to npreds - 1 do
      pred_lens.(j) <- pred_lens.(j) + Array.length s.pred_true.(j)
    done
  in
  scan 0 first;
  for i = 1 to n - 1 do
    scan i (load i)
  done;
  let nruns = Array.fold_left ( + ) 0 member_runs in
  let run_ids = Array.make nruns 0 in
  let failing = Bitset.create nruns in
  let site_obs = Array.init nsites (fun j -> Array.make site_lens.(j) 0) in
  let pred_true = Array.init npreds (fun j -> Array.make pred_lens.(j) 0) in
  let site_fill = Array.make (max nsites 1) 0 in
  let pred_fill = Array.make (max npreds 1) 0 in
  let off = ref 0 in
  for i = 0 to n - 1 do
    let s = load i in
    if s.nruns <> member_runs.(i) then
      invalid_arg "Segment.concat: member changed between passes";
    Array.blit s.run_ids 0 run_ids !off s.nruns;
    for p = 0 to s.nruns - 1 do
      if Bitset.get s.failing p then Bitset.set failing (!off + p)
    done;
    let fill fills dst src =
      Array.iteri
        (fun j posting ->
          let out = dst.(j) and k0 = fills.(j) in
          Array.iteri (fun k p -> out.(k0 + k) <- p + !off) posting;
          fills.(j) <- k0 + Array.length posting)
        src
    in
    fill site_fill site_obs s.site_obs;
    fill pred_fill pred_true s.pred_true;
    off := !off + s.nruns
  done;
  (* The merged file spans several source byte ranges, so the in-file
     provenance triple is meaningless — the manifest's cover list is
     authoritative for merged segments. *)
  {
    source_shard = 0;
    start_off = 0;
    end_off = 0;
    nsites;
    npreds;
    nruns;
    run_ids;
    failing;
    site_obs;
    pred_true;
  }

let concat segs =
  let arr = Array.of_list segs in
  concat_n ~load:(fun i -> arr.(i)) (Array.length arr)

(* --- binary encoding --- *)

let add_le buf width v =
  for i = 0 to width - 1 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let read_le s pos width =
  let v = ref 0 in
  for i = width - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let bitmap_bytes nruns = (nruns + 7) / 8

let add_bitmap buf failing nruns =
  let nbytes = bitmap_bytes nruns in
  let bitmap = Bytes.make nbytes '\000' in
  for pos = 0 to nruns - 1 do
    if Bitset.get failing pos then
      Bytes.set bitmap (pos / 8)
        (Char.chr (Char.code (Bytes.get bitmap (pos / 8)) lor (1 lsl (pos mod 8))))
  done;
  Buffer.add_bytes buf bitmap

let parse_bitmap s off nruns =
  let failing = Bitset.create nruns in
  for p = 0 to nruns - 1 do
    if Char.code s.[off + (p / 8)] land (1 lsl (p mod 8)) <> 0 then Bitset.set failing p
  done;
  failing

(* Bare delta sequence, no count prefix: lengths and counts live in the
   footer directory for v2, or in the v1 per-posting prefix. *)
let add_deltas buf posting =
  let prev = ref 0 in
  Array.iteri
    (fun i pos ->
      Codec.add_varint buf (if i = 0 then pos else pos - !prev);
      prev := pos)
    posting

let read_deltas s pos limit ~count ~nruns =
  let posting = Array.make count 0 in
  let prev = ref (-1) in
  for i = 0 to count - 1 do
    let v = Codec.read_varint s pos limit in
    let p = if i = 0 then v else !prev + v in
    if i > 0 && v = 0 then raise (Corrupt "posting positions not strictly increasing");
    if p >= nruns then raise (Corrupt "posting position out of range");
    posting.(i) <- p;
    prev := p
  done;
  posting

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.add_varint buf format_version;
  Codec.add_varint buf t.source_shard;
  Codec.add_varint buf t.start_off;
  Codec.add_varint buf t.end_off;
  Codec.add_varint buf t.nsites;
  Codec.add_varint buf t.npreds;
  Codec.add_varint buf t.nruns;
  let run_ids_off = Buffer.length buf in
  Array.iter (Codec.add_varint buf) t.run_ids;
  let bitmap_off = Buffer.length buf in
  add_bitmap buf t.failing t.nruns;
  let heap_off = Buffer.length buf in
  let add_heap posting =
    let before = Buffer.length buf in
    add_deltas buf posting;
    Buffer.length buf - before
  in
  let site_lens = Array.map add_heap t.site_obs in
  let pred_lens = Array.map add_heap t.pred_true in
  (* footer: §3.1 failure splits + the posting directory, so a reader can
     recover aggregates and any single posting without the heap *)
  let footer_off = Buffer.length buf in
  let fcount posting =
    Array.fold_left (fun a pos -> if Bitset.get t.failing pos then a + 1 else a) 0 posting
  in
  Codec.add_varint buf (Bitset.count t.failing);
  Array.iter (fun posting -> Codec.add_varint buf (fcount posting)) t.pred_true;
  Array.iter (fun posting -> Codec.add_varint buf (fcount posting)) t.site_obs;
  Array.iteri
    (fun i posting ->
      Codec.add_varint buf (Array.length posting);
      Codec.add_varint buf site_lens.(i))
    t.site_obs;
  Array.iteri
    (fun i posting ->
      Codec.add_varint buf (Array.length posting);
      Codec.add_varint buf pred_lens.(i))
    t.pred_true;
  Codec.add_varint buf run_ids_off;
  Codec.add_varint buf bitmap_off;
  Codec.add_varint buf heap_off;
  let footer_len = Buffer.length buf - footer_off in
  let body = Buffer.contents buf in
  add_le buf 8 footer_off;
  add_le buf 4 (Sbi_util.Crc32.sub body ~pos:footer_off ~len:footer_len);
  let with_trailer = Buffer.contents buf in
  add_le buf 4
    (Sbi_util.Crc32.sub with_trailer ~pos:(String.length magic)
       ~len:(String.length with_trailer - String.length magic));
  Buffer.contents buf

let encode_v1 t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.add_varint buf 1;
  Codec.add_varint buf t.source_shard;
  Codec.add_varint buf t.start_off;
  Codec.add_varint buf t.end_off;
  Codec.add_varint buf t.nsites;
  Codec.add_varint buf t.npreds;
  Codec.add_varint buf t.nruns;
  Array.iter (Codec.add_varint buf) t.run_ids;
  add_bitmap buf t.failing t.nruns;
  let add_posting posting =
    Codec.add_varint buf (Array.length posting);
    add_deltas buf posting
  in
  Array.iter add_posting t.site_obs;
  Array.iter add_posting t.pred_true;
  let body = Buffer.contents buf in
  add_le buf 4
    (Sbi_util.Crc32.sub body ~pos:(String.length magic)
       ~len:(String.length body - String.length magic));
  Buffer.contents buf

(* --- footer --- *)

type footer = {
  ft_version : int;
  ft_source_shard : int;
  ft_start_off : int;
  ft_end_off : int;
  ft_nsites : int;
  ft_npreds : int;
  ft_nruns : int;
  ft_num_f : int;
  ft_f_pred : int array;
  ft_f_obs_site : int array;
  ft_site_dir : (int * int * int) array;
  ft_pred_dir : (int * int * int) array;
  ft_run_ids_off : int;
  ft_bitmap_off : int;
  ft_heap_off : int;
  ft_size : int;
}

(* Parse the footer region given the already-parsed header.  [s] holds the
   bytes of [footer_off, size - trailer_len) — either a slice read from
   disk (lazy open) or the full file (decode, with [base = footer_off]). *)
let parse_footer s ~base ~len ~header ~size =
  let version, source_shard, start_off, end_off, nsites, npreds, nruns = header in
  let pos = ref base in
  let limit = base + len in
  let rd () = Codec.read_varint s pos limit in
  let num_f = rd () in
  if num_f > nruns then raise (Corrupt "footer num_f exceeds run count");
  let f_pred = Array.init npreds (fun _ -> rd ()) in
  let f_obs_site = Array.init nsites (fun _ -> rd ()) in
  let raw_dir n = Array.init n (fun _ -> let count = rd () in let blen = rd () in (count, blen)) in
  let site_raw = raw_dir nsites in
  let pred_raw = raw_dir npreds in
  let run_ids_off = rd () in
  let bitmap_off = rd () in
  let heap_off = rd () in
  if !pos <> limit then raise (Corrupt "trailing bytes in segment footer");
  let footer_off = size - trailer_len - len in
  if
    run_ids_off > bitmap_off || bitmap_off > heap_off || heap_off > footer_off
    || bitmap_off - run_ids_off < 0
    || heap_off - bitmap_off <> bitmap_bytes nruns
  then raise (Corrupt "inconsistent segment section offsets");
  let heap = ref heap_off in
  let abs_dir raw =
    Array.map
      (fun (count, blen) ->
        if count > nruns then raise (Corrupt "posting longer than run count");
        let off = !heap in
        heap := !heap + blen;
        if !heap > footer_off then raise (Corrupt "posting directory overruns heap");
        (off, blen, count))
      raw
  in
  let site_dir = abs_dir site_raw in
  let pred_dir = abs_dir pred_raw in
  if !heap <> footer_off then raise (Corrupt "posting heap size mismatch");
  {
    ft_version = version;
    ft_source_shard = source_shard;
    ft_start_off = start_off;
    ft_end_off = end_off;
    ft_nsites = nsites;
    ft_npreds = npreds;
    ft_nruns = nruns;
    ft_num_f = num_f;
    ft_f_pred = f_pred;
    ft_f_obs_site = f_obs_site;
    ft_site_dir = site_dir;
    ft_pred_dir = pred_dir;
    ft_run_ids_off = run_ids_off;
    ft_bitmap_off = bitmap_off;
    ft_heap_off = heap_off;
    ft_size = size;
  }

let footer_aggregator ~pred_site ft =
  let agg = Aggregator.empty ~nsites:ft.ft_nsites ~npreds:ft.ft_npreds ~pred_site in
  agg.Aggregator.num_f <- ft.ft_num_f;
  agg.Aggregator.num_s <- ft.ft_nruns - ft.ft_num_f;
  Array.iteri
    (fun p (_, _, count) ->
      let f = ft.ft_f_pred.(p) in
      if f > count then raise (Corrupt "footer failing count exceeds posting count");
      agg.Aggregator.f.(p) <- f;
      agg.Aggregator.s.(p) <- count - f)
    ft.ft_pred_dir;
  Array.iteri
    (fun i (_, _, count) ->
      let f = ft.ft_f_obs_site.(i) in
      if f > count then raise (Corrupt "footer failing count exceeds posting count");
      agg.Aggregator.f_obs_site.(i) <- f;
      agg.Aggregator.s_obs_site.(i) <- count - f)
    ft.ft_site_dir;
  agg

(* --- decoding --- *)

let read_posting_v1 s pos limit ~nruns =
  let len = Codec.read_varint s pos limit in
  if len > nruns then raise (Corrupt "posting longer than run count");
  read_deltas s pos limit ~count:len ~nruns

let parse_header s pos limit =
  let rd () = Codec.read_varint s pos limit in
  let version = rd () in
  if version < 1 || version > format_version then
    raise (Corrupt (Printf.sprintf "unsupported segment version %d" version));
  let source_shard = rd () in
  let start_off = rd () in
  let end_off = rd () in
  let nsites = rd () in
  let npreds = rd () in
  let nruns = rd () in
  (version, source_shard, start_off, end_off, nsites, npreds, nruns)

let decode s =
  let n = String.length s in
  if n < String.length magic + 4 || String.sub s 0 (String.length magic) <> magic then
    raise (Corrupt "bad magic");
  let body_len = n - 4 in
  let stored = read_le s body_len 4 in
  let computed =
    Sbi_util.Crc32.sub s ~pos:(String.length magic) ~len:(body_len - String.length magic)
  in
  if stored <> computed then raise (Corrupt "CRC mismatch");
  let pos = ref (String.length magic) in
  try
    let header = parse_header s pos body_len in
    let version, source_shard, start_off, end_off, nsites, npreds, nruns = header in
    if version = 1 then begin
      let run_ids = Array.init nruns (fun _ -> Codec.read_varint s pos body_len) in
      let nbytes = bitmap_bytes nruns in
      if !pos + nbytes > body_len then raise (Corrupt "truncated outcome bitmap");
      let failing = parse_bitmap s !pos nruns in
      pos := !pos + nbytes;
      let site_obs = Array.init nsites (fun _ -> read_posting_v1 s pos body_len ~nruns) in
      let pred_true = Array.init npreds (fun _ -> read_posting_v1 s pos body_len ~nruns) in
      if !pos <> body_len then raise (Corrupt "trailing bytes in segment body");
      { source_shard; start_off; end_off; nsites; npreds; nruns; run_ids; failing; site_obs; pred_true }
    end
    else begin
      if n < trailer_len + String.length magic then raise (Corrupt "segment too small");
      let footer_off = read_le s (n - trailer_len) 8 in
      if footer_off < !pos || footer_off > n - trailer_len then
        raise (Corrupt "footer offset out of bounds");
      let ft =
        parse_footer s ~base:footer_off ~len:(n - trailer_len - footer_off) ~header ~size:n
      in
      if ft.ft_run_ids_off <> !pos then raise (Corrupt "header/footer offset mismatch");
      pos := ft.ft_run_ids_off;
      let run_ids = Array.init nruns (fun _ -> Codec.read_varint s pos ft.ft_bitmap_off) in
      if !pos <> ft.ft_bitmap_off then raise (Corrupt "run-id section size mismatch");
      let failing = parse_bitmap s ft.ft_bitmap_off nruns in
      if Bitset.count failing <> ft.ft_num_f then
        raise (Corrupt "footer num_f disagrees with outcome bitmap");
      let load (off, blen, count) =
        let p = ref off in
        let posting = read_deltas s p (off + blen) ~count ~nruns in
        if !p <> off + blen then raise (Corrupt "posting byte length mismatch");
        posting
      in
      let site_obs = Array.map load ft.ft_site_dir in
      let pred_true = Array.map load ft.ft_pred_dir in
      { source_shard; start_off; end_off; nsites; npreds; nruns; run_ids; failing; site_obs; pred_true }
    end
  with Codec.Corrupt m -> raise (Corrupt m)

(* --- lazy disk access (v2 only) --- *)

let wrap_io f =
  try f () with
  | Codec.Corrupt m -> raise (Corrupt m)
  | End_of_file -> raise (Corrupt "short read")

let read_footer ?io path =
  wrap_io (fun () ->
      let size = Io.file_size path in
      if size < String.length magic + trailer_len then raise (Corrupt "segment too small");
      let head_len = min size 128 in
      let head = Io.read_sub ?io path ~pos:0 ~len:head_len in
      if String.length head < head_len then raise (Corrupt "short read");
      if String.sub head 0 (String.length magic) <> magic then raise (Corrupt "bad magic");
      let pos = ref (String.length magic) in
      let header = parse_header head pos head_len in
      let version, _, _, _, _, _, _ = header in
      if version = 1 then None
      else begin
        let trailer = Io.read_sub ?io path ~pos:(size - trailer_len) ~len:trailer_len in
        if String.length trailer < trailer_len then raise (Corrupt "short read");
        let footer_off = read_le trailer 0 8 in
        let footer_crc = read_le trailer 8 4 in
        if footer_off < !pos || footer_off > size - trailer_len then
          raise (Corrupt "footer offset out of bounds");
        let flen = size - trailer_len - footer_off in
        let fbytes = Io.read_sub ?io path ~pos:footer_off ~len:flen in
        if String.length fbytes < flen then raise (Corrupt "short read");
        if Sbi_util.Crc32.string fbytes <> footer_crc then raise (Corrupt "footer CRC mismatch");
        Some (parse_footer fbytes ~base:0 ~len:flen ~header ~size)
      end)

let read_failing ?io path ft =
  wrap_io (fun () ->
      let nbytes = bitmap_bytes ft.ft_nruns in
      let s = Io.read_sub ?io path ~pos:ft.ft_bitmap_off ~len:nbytes in
      if String.length s < nbytes then raise (Corrupt "short read");
      parse_bitmap s 0 ft.ft_nruns)

let read_posting ?io path ft kind i =
  wrap_io (fun () ->
      let dir = match kind with `Site -> ft.ft_site_dir | `Pred -> ft.ft_pred_dir in
      if i < 0 || i >= Array.length dir then invalid_arg "Segment.read_posting";
      let off, blen, count = dir.(i) in
      let s = Io.read_sub ?io path ~pos:off ~len:blen in
      if String.length s < blen then raise (Corrupt "short read");
      let pos = ref 0 in
      let posting = read_deltas s pos blen ~count ~nruns:ft.ft_nruns in
      if !pos <> blen then raise (Corrupt "posting byte length mismatch");
      posting)

let read_run_ids ?io path ft =
  wrap_io (fun () ->
      let blen = ft.ft_bitmap_off - ft.ft_run_ids_off in
      let s = Io.read_sub ?io path ~pos:ft.ft_run_ids_off ~len:blen in
      if String.length s < blen then raise (Corrupt "short read");
      let pos = ref 0 in
      let run_ids = Array.init ft.ft_nruns (fun _ -> Codec.read_varint s pos blen) in
      if !pos <> blen then raise (Corrupt "run-id section size mismatch");
      run_ids)
