(* Compressed run bitmaps: a roaring-style representation over the same
   word layout as the dense {!Bitset}.  The run population is cut into
   word-aligned chunks of [chunk_words] words (~64k bits); each chunk
   independently picks the cheapest of three container shapes for its
   density — a sorted position array (sparse), a dense word block, or a
   run list (long homogeneous stretches).  Because chunks are aligned to
   the dense bitset's words, every kernel against a dense mask is still
   word-at-a-time popcount work, never a per-bit translation. *)

type container =
  | Empty
  | Pos of int array  (* sorted in-chunk bit positions *)
  | Words of int array  (* dense words, chunk-local *)
  | Runs of int array  (* flattened (start, len) pairs, in-chunk, disjoint, sorted *)

type t = { r_len : int; chunks : container array }

let bits_per_word = Sys.int_size
let chunk_words = 1024
let chunk_bits = chunk_words * bits_per_word

let length t = t.r_len
let nchunks len = (len + chunk_bits - 1) / chunk_bits

(* words in chunk [k] of a length-[len] bitmap (the last chunk is short) *)
let words_in_chunk len k =
  let total = (len + bits_per_word - 1) / bits_per_word in
  min chunk_words (total - (k * chunk_words))

(* --- construction --- *)

let is_sorted_strict ps =
  let ok = ref true in
  for i = 1 to Array.length ps - 1 do
    if ps.(i) <= ps.(i - 1) then ok := false
  done;
  !ok

(* Container choice is a straight storage-cost comparison in words:
   positions cost [card], runs cost [2*nruns], a dense block costs
   [words_in_chunk].  Ties prefer the run form (cheapest to intersect),
   then positions. *)
let choose_container nw card nruns positions =
  if card = 0 then Empty
  else begin
    let run_cost = 2 * nruns and pos_cost = card and word_cost = nw in
    if run_cost <= pos_cost && run_cost <= word_cost then begin
      let runs = Array.make (2 * nruns) 0 in
      let r = ref 0 in
      Array.iteri
        (fun i p ->
          if i = 0 || p <> positions.(i - 1) + 1 then begin
            runs.(2 * !r) <- p;
            runs.((2 * !r) + 1) <- 1;
            incr r
          end
          else runs.((2 * (!r - 1)) + 1) <- runs.((2 * (!r - 1)) + 1) + 1)
        positions;
      Runs runs
    end
    else if pos_cost <= word_cost then Pos (Array.copy positions)
    else begin
      let w = Array.make nw 0 in
      Array.iter
        (fun p -> w.(p / bits_per_word) <- w.(p / bits_per_word) lor (1 lsl (p mod bits_per_word)))
        positions;
      Words w
    end
  end

let of_positions len ps =
  if len < 0 then invalid_arg "Rbitmap.of_positions";
  let ps =
    if is_sorted_strict ps then ps
    else begin
      let c = Array.copy ps in
      Array.sort Int.compare c;
      (* drop duplicates in place *)
      let n = Array.length c in
      if n = 0 then c
      else begin
        let w = ref 1 in
        for i = 1 to n - 1 do
          if c.(i) <> c.(!w - 1) then begin
            c.(!w) <- c.(i);
            incr w
          end
        done;
        Array.sub c 0 !w
      end
    end
  in
  Array.iter (fun p -> if p < 0 || p >= len then invalid_arg "Rbitmap.of_positions: out of range") ps;
  let nc = max 1 (nchunks len) in
  let chunks = Array.make nc Empty in
  let n = Array.length ps in
  let i = ref 0 in
  for k = 0 to nc - 1 do
    let lo = k * chunk_bits and hi = min len ((k + 1) * chunk_bits) in
    let start = !i in
    while !i < n && ps.(!i) < hi do
      incr i
    done;
    let card = !i - start in
    if card > 0 then begin
      let positions = Array.init card (fun j -> ps.(start + j) - lo) in
      let nruns = ref 1 in
      for j = 1 to card - 1 do
        if positions.(j) <> positions.(j - 1) + 1 then incr nruns
      done;
      chunks.(k) <- choose_container (words_in_chunk len k) card !nruns positions
    end
  done;
  { r_len = len; chunks }

(* --- point access / iteration --- *)

let get t i =
  if i < 0 || i >= t.r_len then invalid_arg "Rbitmap.get: index out of bounds";
  let k = i / chunk_bits and p = i mod chunk_bits in
  match t.chunks.(k) with
  | Empty -> false
  | Pos ps ->
      let rec bs lo hi =
        if lo >= hi then false
        else
          let mid = (lo + hi) / 2 in
          if ps.(mid) = p then true else if ps.(mid) < p then bs (mid + 1) hi else bs lo mid
      in
      bs 0 (Array.length ps)
  | Words w -> w.(p / bits_per_word) land (1 lsl (p mod bits_per_word)) <> 0
  | Runs rs ->
      let found = ref false in
      let j = ref 0 in
      let n = Array.length rs / 2 in
      while (not !found) && !j < n && rs.(2 * !j) <= p do
        if p < rs.(2 * !j) + rs.((2 * !j) + 1) then found := true;
        incr j
      done;
      !found

let iter f t =
  Array.iteri
    (fun k c ->
      let base = k * chunk_bits in
      match c with
      | Empty -> ()
      | Pos ps -> Array.iter (fun p -> f (base + p)) ps
      | Runs rs ->
          for j = 0 to (Array.length rs / 2) - 1 do
            let s = rs.(2 * j) and l = rs.((2 * j) + 1) in
            for p = s to s + l - 1 do
              f (base + p)
            done
          done
      | Words w ->
          Array.iteri
            (fun wi word ->
              if word <> 0 then
                for b = 0 to bits_per_word - 1 do
                  if word land (1 lsl b) <> 0 then f (base + (wi * bits_per_word) + b)
                done)
            w)
    t.chunks

(* --- counting kernels --- *)

let count t =
  Array.fold_left
    (fun acc c ->
      match c with
      | Empty -> acc
      | Pos ps -> acc + Array.length ps
      | Words w -> Array.fold_left (fun a x -> a + Bitset.popcount x) acc w
      | Runs rs ->
          let a = ref acc in
          for j = 0 to (Array.length rs / 2) - 1 do
            a := !a + rs.((2 * j) + 1)
          done;
          !a)
    0 t.chunks

let to_positions t =
  let out = Array.make (count t) 0 in
  let i = ref 0 in
  iter
    (fun p ->
      out.(!i) <- p;
      incr i)
    t;
  out

let check_len name t (b : Bitset.t) =
  if t.r_len <> Bitset.length b then invalid_arg (name ^ ": length mismatch")

(* Fold [f] over every (dense word index, chunk word mask) pair of one
   run: the word-level decomposition shared by the run-container
   kernels.  [off] is the chunk's base index into the dense word array. *)
let run_words ~off s l f =
  let last = s + l - 1 in
  let w0 = s / bits_per_word and w1 = last / bits_per_word in
  let lo_bit = s mod bits_per_word and hi_bit = last mod bits_per_word in
  let all = -1 in
  (* mask of bits >= k within a word (k in 0..bits_per_word-1) *)
  let ge k = all lsl k in
  (* mask of bits <= k *)
  let le k = if k = bits_per_word - 1 then all else (1 lsl (k + 1)) - 1 in
  if w0 = w1 then f (off + w0) (ge lo_bit land le hi_bit)
  else begin
    f (off + w0) (ge lo_bit);
    for w = w0 + 1 to w1 - 1 do
      f (off + w) all
    done;
    f (off + w1) (le hi_bit)
  end

let inter_count t b =
  check_len "Rbitmap.inter_count" t b;
  let bw = Bitset.words b in
  let acc = ref 0 in
  Array.iteri
    (fun k c ->
      let off = k * chunk_words in
      match c with
      | Empty -> ()
      | Words w ->
          for i = 0 to Array.length w - 1 do
            acc := !acc + Bitset.popcount (w.(i) land bw.(off + i))
          done
      | Pos ps ->
          let base = k * chunk_bits in
          Array.iter
            (fun p ->
              let g = base + p in
              if bw.(g / bits_per_word) land (1 lsl (g mod bits_per_word)) <> 0 then incr acc)
            ps
      | Runs rs ->
          for j = 0 to (Array.length rs / 2) - 1 do
            run_words ~off rs.(2 * j)
              rs.((2 * j) + 1)
              (fun wi m -> acc := !acc + Bitset.popcount (bw.(wi) land m))
          done)
    t.chunks;
  !acc

let inter_count3 t b c =
  check_len "Rbitmap.inter_count3" t b;
  check_len "Rbitmap.inter_count3" t c;
  let bw = Bitset.words b and cw = Bitset.words c in
  let acc = ref 0 in
  Array.iteri
    (fun k cont ->
      let off = k * chunk_words in
      match cont with
      | Empty -> ()
      | Words w ->
          for i = 0 to Array.length w - 1 do
            acc := !acc + Bitset.popcount (w.(i) land bw.(off + i) land cw.(off + i))
          done
      | Pos ps ->
          let base = k * chunk_bits in
          Array.iter
            (fun p ->
              let g = base + p in
              let wi = g / bits_per_word and m = 1 lsl (g mod bits_per_word) in
              if bw.(wi) land cw.(wi) land m <> 0 then incr acc)
            ps
      | Runs rs ->
          for j = 0 to (Array.length rs / 2) - 1 do
            run_words ~off rs.(2 * j)
              rs.((2 * j) + 1)
              (fun wi m -> acc := !acc + Bitset.popcount (bw.(wi) land cw.(wi) land m))
          done)
    t.chunks;
  !acc

(* --- mutating kernels against a dense target --- *)

let diff_inplace a t =
  check_len "Rbitmap.diff_inplace" t a;
  let aw = Bitset.words a in
  Array.iteri
    (fun k c ->
      let off = k * chunk_words in
      match c with
      | Empty -> ()
      | Words w ->
          for i = 0 to Array.length w - 1 do
            aw.(off + i) <- aw.(off + i) land lnot w.(i)
          done
      | Pos ps ->
          let base = k * chunk_bits in
          Array.iter
            (fun p ->
              let g = base + p in
              let wi = g / bits_per_word in
              aw.(wi) <- aw.(wi) land lnot (1 lsl (g mod bits_per_word)))
            ps
      | Runs rs ->
          for j = 0 to (Array.length rs / 2) - 1 do
            run_words ~off rs.(2 * j)
              rs.((2 * j) + 1)
              (fun wi m -> aw.(wi) <- aw.(wi) land lnot m)
          done)
    t.chunks

let diff_inter_inplace a t c =
  check_len "Rbitmap.diff_inter_inplace" t a;
  check_len "Rbitmap.diff_inter_inplace" t c;
  let aw = Bitset.words a and cw = Bitset.words c in
  Array.iteri
    (fun k cont ->
      let off = k * chunk_words in
      match cont with
      | Empty -> ()
      | Words w ->
          for i = 0 to Array.length w - 1 do
            aw.(off + i) <- aw.(off + i) land lnot (w.(i) land cw.(off + i))
          done
      | Pos ps ->
          let base = k * chunk_bits in
          Array.iter
            (fun p ->
              let g = base + p in
              let wi = g / bits_per_word and m = 1 lsl (g mod bits_per_word) in
              aw.(wi) <- aw.(wi) land lnot (m land cw.(wi)))
            ps
      | Runs rs ->
          for j = 0 to (Array.length rs / 2) - 1 do
            run_words ~off rs.(2 * j)
              rs.((2 * j) + 1)
              (fun wi m -> aw.(wi) <- aw.(wi) land lnot (m land cw.(wi)))
          done)
    t.chunks

(* --- conversions / accounting --- *)

let to_bitset t = Bitset.of_positions t.r_len (to_positions t)

let of_bitset b =
  let len = Bitset.length b in
  let acc = ref [] in
  for i = len - 1 downto 0 do
    if Bitset.get b i then acc := i :: !acc
  done;
  of_positions len (Array.of_list !acc)

(* payload words held by the containers: the LRU cache's cost metric *)
let memory_words t =
  Array.fold_left
    (fun acc c ->
      match c with
      | Empty -> acc + 1
      | Pos ps -> acc + Array.length ps + 2
      | Words w -> acc + Array.length w + 2
      | Runs rs -> acc + Array.length rs + 2)
    2 t.chunks

(* container census, for stats/debugging *)
let shape t =
  let e = ref 0 and p = ref 0 and w = ref 0 and r = ref 0 in
  Array.iter
    (function
      | Empty -> incr e
      | Pos _ -> incr p
      | Words _ -> incr w
      | Runs _ -> incr r)
    t.chunks;
  (!e, !p, !w, !r)
