(** Compressed run bitmaps: roaring-style containers over the dense
    {!Bitset} word layout.

    The run population is cut into word-aligned ~64k-bit chunks
    ([1024 * Sys.int_size]); each chunk independently stores its set
    bits as whichever of three container shapes is cheapest for its
    density — a sorted position array (sparse), a dense word block
    (heavy), or a run list (long homogeneous stretches, including the
    all-set chunk at two words).  Empty chunks cost one constructor.

    Every kernel mirrors the corresponding {!Bitset} kernel and produces
    the same integers, so the snapshot/triage layers compute identical
    §3.1 counts on either representation; the dense operands ([Bitset])
    stay dense because the elimination loop mutates them in place.
    Chunks are aligned to the dense bitset's words, so the kernels stay
    word-at-a-time popcount work — never a per-bit re-indexing. *)

type t

val chunk_bits : int
(** Bits covered by one chunk ([1024 * Sys.int_size]). *)

val of_positions : int -> int array -> t
(** [of_positions n ps]: the compressed bitmap of length [n] with bits
    [ps] set.  Sorted, duplicate-free input is used as-is (the posting
    lists' invariant); anything else is sorted and deduplicated first.
    @raise Invalid_argument on a position outside [0, n). *)

val of_bitset : Bitset.t -> t
val to_bitset : t -> Bitset.t

val length : t -> int
val get : t -> int -> bool
val count : t -> int

val iter : (int -> unit) -> t -> unit
(** Set positions in increasing order. *)

val to_positions : t -> int array
(** Sorted set positions — the posting list back. *)

val inter_count : t -> Bitset.t -> int
(** [inter_count t b] = [Bitset.inter_count (to_bitset t) b].
    @raise Invalid_argument on length mismatch. *)

val inter_count3 : t -> Bitset.t -> Bitset.t -> int
(** Three-way intersection popcount, dense operands [b] and [c]. *)

val diff_inplace : Bitset.t -> t -> unit
(** [diff_inplace a t]: [a := a ∧ ¬t] (discard proposal 1). *)

val diff_inter_inplace : Bitset.t -> t -> Bitset.t -> unit
(** [diff_inter_inplace a t c]: [a := a ∧ ¬(t ∧ c)] (proposals 2/3). *)

val memory_words : t -> int
(** Approximate heap words held — the posting cache's cost metric. *)

val shape : t -> int * int * int * int
(** Container census [(empty, positions, words, runs)] across chunks. *)
