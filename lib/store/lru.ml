(* Thread-safe LRU cache with a cost budget, used to bound the memory
   the lazy segment loader spends on materialized postings.  A doubly
   linked list carries recency; a hashtable carries membership.  Loads
   run OUTSIDE the lock — two threads missing the same key may both
   compute the value, and the second insert wins; that duplicated work
   is preferred over holding the lock across a disk read. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  cost : int;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  budget : int;
  cost_of : 'v -> int;
  lock : Mutex.t;
  mutable head : ('k, 'v) node option;  (* most recent *)
  mutable tail : ('k, 'v) node option;  (* eviction candidate *)
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; used : int; entries : int }

let create ?(budget = 1 lsl 22) ~cost () =
  if budget <= 0 then invalid_arg "Lru.create: budget must be positive";
  {
    table = Hashtbl.create 256;
    budget;
    cost_of = cost;
    lock = Mutex.create ();
    head = None;
    tail = None;
    used = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* list surgery; caller holds the lock *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_to_budget (t : (_, _) t) =
  while t.used > t.budget && t.tail <> None do
    match t.tail with
    | None -> ()
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table n.key;
        t.used <- t.used - n.cost;
        t.evictions <- t.evictions + 1
  done

let insert (t : (_, _) t) key value =
  let cost = t.cost_of value in
  match Hashtbl.find_opt t.table key with
  | Some existing ->
      (* a racing loader beat us; keep its entry, just refresh recency *)
      unlink t existing;
      push_front t existing;
      existing.value
  | None ->
      let n = { key; value; cost; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      t.used <- t.used + cost;
      evict_to_budget t;
      value

let find_or_add (t : (_, _) t) key load =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some n ->
            unlink t n;
            push_front t n;
            t.hits <- t.hits + 1;
            Some n.value
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = load () in
      locked t (fun () -> insert t key v)

let stats (t : (_, _) t) =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        used = t.used;
        entries = Hashtbl.length t.table;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.used <- 0)
