(* Size-tiered compaction policy (pure: no I/O).

   Segments are bucketed into tiers by run count: tier 0 holds segments
   below [base] runs, tier [k] holds [base*fanout^(k-1), base*fanout^k).
   When a tier accumulates [tier_max] or more members, the policy
   proposes merging ALL of them into one segment — which lands in a
   higher tier, possibly cascading on the next planning round.  This is
   the classic size-tiered LSM shape: writes produce many small tier-0
   segments, reads see O(tiers) segments after compaction settles. *)

let default_base = 1024
let default_fanout = 8
let default_tier_max = 4

type seg = { ts_index : int; ts_runs : int; ts_bytes : int }

let tier_of ?(base = default_base) ?(fanout = default_fanout) runs =
  if base < 1 || fanout < 2 then invalid_arg "Tier.tier_of";
  let t = ref 0 in
  let cap = ref base in
  (* caps grow geometrically; 62-bit overflow guard stops the loop *)
  while runs >= !cap && !cap <= max_int / fanout do
    incr t;
    cap := !cap * fanout
  done;
  !t

let tiers ?base ?fanout segs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let t = tier_of ?base ?fanout s.ts_runs in
      Hashtbl.replace tbl t (s :: (try Hashtbl.find tbl t with Not_found -> [])))
    segs;
  Hashtbl.fold (fun t members acc -> (t, List.rev members) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let plan ?base ?fanout ?(tier_max = default_tier_max) segs =
  if tier_max < 2 then invalid_arg "Tier.plan: tier_max must be >= 2";
  tiers ?base ?fanout segs
  |> List.filter_map (fun (tier, members) ->
         if List.length members >= tier_max then
           Some (tier, List.map (fun s -> s.ts_index) members)
         else None)

let describe ?base ?fanout segs =
  tiers ?base ?fanout segs
  |> List.map (fun (tier, members) ->
         let runs = List.fold_left (fun a s -> a + s.ts_runs) 0 members in
         let bytes = List.fold_left (fun a s -> a + s.ts_bytes) 0 members in
         (tier, List.length members, runs, bytes))
