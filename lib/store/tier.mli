(** Size-tiered compaction policy — pure planning, no I/O.

    Segments are bucketed by run count into geometric tiers (tier 0
    below [base] runs; tier [k] spans [base*fanout^(k-1), base*fanout^k)).
    A tier holding [tier_max] or more segments is proposed for merging
    into a single larger segment, which lands in a higher tier and may
    cascade on the next round.  The executor lives in
    [Sbi_index.Index.compact]; crash safety comes from the segment
    write + atomic manifest rewrite it performs. *)

val default_base : int
val default_fanout : int
val default_tier_max : int

type seg = {
  ts_index : int;  (** caller's identifier, returned in plans *)
  ts_runs : int;
  ts_bytes : int;
}

val tier_of : ?base:int -> ?fanout:int -> int -> int
(** Tier of a segment with the given run count. *)

val tiers : ?base:int -> ?fanout:int -> seg list -> (int * seg list) list
(** Segments bucketed by tier, ascending; members keep input order. *)

val plan : ?base:int -> ?fanout:int -> ?tier_max:int -> seg list -> (int * int list) list
(** Overfull tiers and the [ts_index]es to merge (all members, input
    order).  Empty list = nothing to do.
    @raise Invalid_argument when [tier_max < 2]. *)

val describe : ?base:int -> ?fanout:int -> seg list -> (int * int * int * int) list
(** Per-tier [(tier, segments, runs, bytes)], ascending — the shape
    report behind [cbi compact --dry-run] and [cbi fsck]. *)
