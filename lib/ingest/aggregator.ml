open Sbi_runtime

type t = {
  nsites : int;
  npreds : int;
  pred_site : int array;
  f : int array;
  s : int array;
  f_obs_site : int array;
  s_obs_site : int array;
  mutable num_f : int;
  mutable num_s : int;
}

let empty ~nsites ~npreds ~pred_site =
  if Array.length pred_site <> npreds then
    invalid_arg "Aggregator.empty: pred_site length mismatch";
  {
    nsites;
    npreds;
    pred_site;
    f = Array.make npreds 0;
    s = Array.make npreds 0;
    f_obs_site = Array.make (max nsites 1) 0;
    s_obs_site = Array.make (max nsites 1) 0;
    num_f = 0;
    num_s = 0;
  }

let of_meta (meta : Dataset.t) =
  empty ~nsites:meta.Dataset.nsites ~npreds:meta.Dataset.npreds
    ~pred_site:meta.Dataset.pred_site

let observe t (r : Report.t) =
  let failing = Report.outcome_is_failure r.Report.outcome in
  if failing then t.num_f <- t.num_f + 1 else t.num_s <- t.num_s + 1;
  let site_counter = if failing then t.f_obs_site else t.s_obs_site in
  Array.iter (fun site -> site_counter.(site) <- site_counter.(site) + 1) r.Report.observed_sites;
  let pred_counter = if failing then t.f else t.s in
  Array.iter (fun pred -> pred_counter.(pred) <- pred_counter.(pred) + 1) r.Report.true_preds

let merge_into ~into:a b =
  if a.npreds <> b.npreds || a.nsites <> b.nsites then
    invalid_arg "Aggregator.merge: mismatched tables";
  let add dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src in
  add a.f b.f;
  add a.s b.s;
  add a.f_obs_site b.f_obs_site;
  add a.s_obs_site b.s_obs_site;
  a.num_f <- a.num_f + b.num_f;
  a.num_s <- a.num_s + b.num_s

let merge a b =
  let t = empty ~nsites:a.nsites ~npreds:a.npreds ~pred_site:a.pred_site in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let to_counts t =
  {
    Sbi_core.Counts.npreds = t.npreds;
    f = Array.copy t.f;
    s = Array.copy t.s;
    f_obs = Array.init t.npreds (fun p -> t.f_obs_site.(t.pred_site.(p)));
    s_obs = Array.init t.npreds (fun p -> t.s_obs_site.(t.pred_site.(p)));
    num_f = t.num_f;
    num_s = t.num_s;
  }

let of_log ~dir =
  let meta = Shard_log.read_meta ~dir in
  let t, stats =
    Shard_log.fold ~dir ~init:(of_meta meta)
      ~f:(fun t r ->
        observe t r;
        t)
      ()
  in
  (t, meta, stats)
