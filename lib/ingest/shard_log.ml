open Sbi_runtime

exception Format_error of string

let magic = "SBIL"
let format_version = 1
let meta_file = "meta"

type stats = {
  records : int;
  bytes : int;
  corrupt_records : int;
  truncated_bytes : int;
}

let zero_stats = { records = 0; bytes = 0; corrupt_records = 0; truncated_bytes = 0 }

let add_stats a b =
  {
    records = a.records + b.records;
    bytes = a.bytes + b.bytes;
    corrupt_records = a.corrupt_records + b.corrupt_records;
    truncated_bytes = a.truncated_bytes + b.truncated_bytes;
  }

let pp_stats s =
  Printf.sprintf "%d records, %d bytes, %d corrupt skipped, %d truncated tail bytes"
    s.records s.bytes s.corrupt_records s.truncated_bytes

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    (* a concurrent creator may win the race between the check and the mkdir *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Shard_log: %s exists and is not a directory" dir)

let shard_path ~dir shard = Filename.concat dir (Printf.sprintf "shard-%04d.sbil" shard)

(* --- writer --- *)

type writer = {
  out : Sbi_fault.Io.out_file;
  buf : Buffer.t;
  fsync : bool;
  mutable w_records : int;
  mutable w_bytes : int;
  mutable closed : bool;
}

let header shard =
  let buf = Buffer.create 8 in
  Buffer.add_string buf magic;
  Codec.add_varint buf format_version;
  Codec.add_varint buf shard;
  Buffer.contents buf

let create_writer ?io ?(fsync = false) ?(append = false) ~dir ~shard () =
  ensure_dir dir;
  let path = shard_path ~dir shard in
  (* appending to an existing shard resumes after its header; a fresh
     file gets one either way *)
  let resume = append && Sys.file_exists path in
  let out = Sbi_fault.Io.open_out ?io ~append:resume path in
  let written =
    if resume then 0
    else begin
      let h = header shard in
      Sbi_fault.Io.output_string out h;
      String.length h
    end
  in
  let w =
    { out; buf = Buffer.create 512; fsync; w_records = 0; w_bytes = written; closed = false }
  in
  if fsync && written > 0 then Sbi_fault.Io.fsync out;
  w

(* Sampled append timer (appends are sub-microsecond buffered writes);
   fsync dominates wall time and is always clocked, separately, so the
   two distributions stay readable. *)
let obs_append = Sbi_obs.Registry.Timer.create ~every:16 "log.append"
let obs_fsync = Sbi_obs.Registry.Timer.create "log.fsync"

let append_raw w r =
  Sbi_obs.Registry.Timer.time obs_append (fun () ->
      Buffer.clear w.buf;
      Codec.add_framed w.buf r;
      Sbi_fault.Io.output_buffer w.out w.buf;
      w.w_records <- w.w_records + 1;
      w.w_bytes <- w.w_bytes + Buffer.length w.buf)

let sync w = Sbi_obs.Registry.Timer.time obs_fsync (fun () -> Sbi_fault.Io.fsync w.out)

let append w r =
  append_raw w r;
  if w.fsync then sync w

let writer_stats w =
  { zero_stats with records = w.w_records; bytes = w.w_bytes }

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    Sbi_fault.Io.close_out w.out
  end;
  writer_stats w

let abandon_writer w =
  if not w.closed then begin
    w.closed <- true;
    Sbi_fault.Io.abandon_out w.out
  end;
  writer_stats w

(* --- reader --- *)

let read_file ?io path = Sbi_fault.Io.read_file ?io path

(* Classifies the file's header bytes.  A file that is a strict prefix of a
   valid header is a writer killed mid-header — a crashed shard that never
   held an acknowledged record, not a foreign file. *)
let parse_header s =
  let n = String.length s in
  let mlen = String.length magic in
  if n < mlen then
    if s = String.sub magic 0 n then Error `Torn_header
    else Error (`Bad "not a shard log (bad magic)")
  else if String.sub s 0 mlen <> magic then Error (`Bad "not a shard log (bad magic)")
  else
    let pos = ref mlen in
    match
      let v = Codec.read_varint s pos n in
      let shard = Codec.read_varint s pos n in
      (v, shard)
    with
    | exception Codec.Corrupt _ -> Error `Torn_header
    | v, _ when v <> format_version ->
        Error (`Bad (Printf.sprintf "unsupported format version %d" v))
    | _, shard -> Ok (shard, !pos)

(* Validates the header, returning (shard index, first record offset). *)
let read_header path s =
  match parse_header s with
  | Ok r -> Ok r
  | Error `Torn_header -> Error `Torn_header
  | Error (`Bad m) -> raise (Format_error (path ^ ": " ^ m))

(* A reader never aborts on record damage: CRC failures are skipped and
   counted, an incomplete tail (crashed writer) ends the scan with its byte
   count recorded, and a header torn mid-write reads as an empty shard.
   Only a foreign/unsupported file is a hard error. *)
let fold_shard ?io path ~init ~f =
  let s = read_file ?io path in
  let n = String.length s in
  match read_header path s with
  | Error `Torn_header ->
      (* a writer died before the header hit disk: nothing was ever
         acknowledged from this shard, so it reads as empty *)
      (init, { zero_stats with bytes = n; truncated_bytes = n })
  | Ok (_, start) ->
  let acc = ref init in
  let records = ref 0 and corrupt = ref 0 in
  let pos = ref start in
  let truncated = ref 0 in
  let continue = ref true in
  while !continue && !pos < n do
    match Codec.read_framed s ~pos:!pos with
    | Codec.Frame (r, next) ->
        acc := f !acc r;
        incr records;
        pos := next
    | Codec.Frame_corrupt next ->
        incr corrupt;
        pos := next
    | Codec.Frame_truncated ->
        truncated := n - !pos;
        continue := false
  done;
  ( !acc,
    {
      records = !records;
      bytes = n;
      corrupt_records = !corrupt;
      truncated_bytes = !truncated;
    } )

let shard_files ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         Scanf.sscanf_opt name "shard-%d.sbil" (fun i -> (i, Filename.concat dir name)))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let fold ?io ~dir ~init ~f () =
  List.fold_left
    (fun (acc, stats) (_, path) ->
      let acc, s = fold_shard ?io path ~init:acc ~f in
      (acc, add_stats stats s))
    (init, zero_stats) (shard_files ~dir)

(* --- metadata --- *)

(* The site/predicate tables reuse the established text format: the meta
   file is a zero-run dataset, so offline tooling can read it directly. *)
let write_meta ?io ~dir ds =
  ensure_dir dir;
  Dataset.save ?io (Filename.concat dir meta_file) { ds with Dataset.runs = [||] }

let read_meta ~dir =
  let path = Filename.concat dir meta_file in
  if not (Sys.file_exists path) then raise (Format_error (path ^ ": missing meta file"));
  match Dataset.load path with
  | ds -> ds
  | exception Dataset.Parse_error m -> raise (Format_error (path ^ ": bad meta: " ^ m))

(* --- whole-log operations --- *)

let write_dataset ~dir ~shards ds =
  if shards < 1 then invalid_arg "Shard_log.write_dataset: shards must be >= 1";
  write_meta ~dir ds;
  let nruns = Array.length ds.Dataset.runs in
  let per = (nruns + shards - 1) / max shards 1 in
  let total = ref zero_stats in
  for shard = 0 to shards - 1 do
    let w = create_writer ~dir ~shard () in
    let lo = shard * per and hi = min nruns ((shard + 1) * per) in
    for i = lo to hi - 1 do
      append w ds.Dataset.runs.(i)
    done;
    total := add_stats !total (close_writer w)
  done;
  !total

let read_all ~dir =
  let meta = read_meta ~dir in
  let rev, stats = fold ~dir ~init:[] ~f:(fun acc r -> r :: acc) () in
  let runs = Array.of_list (List.rev rev) in
  (* canonical merge: shard order is arbitrary, run ids are not *)
  Array.sort
    (fun (a : Report.t) (b : Report.t) -> Int.compare a.Report.run_id b.Report.run_id)
    runs;
  ({ meta with Dataset.runs }, stats)
