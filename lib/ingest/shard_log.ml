open Sbi_runtime

exception Format_error of string

let magic = "SBIL"
let format_version = 1
let meta_file = "meta"

type stats = {
  records : int;
  bytes : int;
  corrupt_records : int;
  truncated_bytes : int;
}

let zero_stats = { records = 0; bytes = 0; corrupt_records = 0; truncated_bytes = 0 }

let add_stats a b =
  {
    records = a.records + b.records;
    bytes = a.bytes + b.bytes;
    corrupt_records = a.corrupt_records + b.corrupt_records;
    truncated_bytes = a.truncated_bytes + b.truncated_bytes;
  }

let pp_stats s =
  Printf.sprintf "%d records, %d bytes, %d corrupt skipped, %d truncated tail bytes"
    s.records s.bytes s.corrupt_records s.truncated_bytes

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    (* a concurrent creator may win the race between the check and the mkdir *)
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Shard_log: %s exists and is not a directory" dir)

let shard_path ~dir shard = Filename.concat dir (Printf.sprintf "shard-%04d.sbil" shard)

(* --- writer --- *)

type writer = {
  oc : out_channel;
  buf : Buffer.t;
  fsync : bool;
  mutable w_records : int;
  mutable w_bytes : int;
  mutable closed : bool;
}

let header shard =
  let buf = Buffer.create 8 in
  Buffer.add_string buf magic;
  Codec.add_varint buf format_version;
  Codec.add_varint buf shard;
  Buffer.contents buf

let create_writer ?(fsync = false) ~dir ~shard () =
  ensure_dir dir;
  let oc = open_out_bin (shard_path ~dir shard) in
  let h = header shard in
  output_string oc h;
  let w =
    { oc; buf = Buffer.create 512; fsync; w_records = 0; w_bytes = String.length h; closed = false }
  in
  if fsync then begin
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)
  end;
  w

let append w r =
  Buffer.clear w.buf;
  Codec.add_framed w.buf r;
  Buffer.output_buffer w.oc w.buf;
  w.w_records <- w.w_records + 1;
  w.w_bytes <- w.w_bytes + Buffer.length w.buf;
  if w.fsync then begin
    flush w.oc;
    Unix.fsync (Unix.descr_of_out_channel w.oc)
  end

let writer_stats w =
  { zero_stats with records = w.w_records; bytes = w.w_bytes }

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end;
  writer_stats w

(* --- reader --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Validates the header, returning (shard index, first record offset). *)
let read_header path s =
  let n = String.length s in
  if n < String.length magic || String.sub s 0 (String.length magic) <> magic then
    raise (Format_error (path ^ ": not a shard log (bad magic)"));
  let pos = ref (String.length magic) in
  match
    let v = Codec.read_varint s pos n in
    let shard = Codec.read_varint s pos n in
    (v, shard)
  with
  | exception Codec.Corrupt _ -> raise (Format_error (path ^ ": truncated header"))
  | v, _ when v <> format_version ->
      raise (Format_error (Printf.sprintf "%s: unsupported format version %d" path v))
  | _, shard -> (shard, !pos)

(* A reader never aborts on record damage: CRC failures are skipped and
   counted, and an incomplete tail (crashed writer) ends the scan with its
   byte count recorded.  Only a bad header is a hard error. *)
let fold_shard path ~init ~f =
  let s = read_file path in
  let _, start = read_header path s in
  let n = String.length s in
  let acc = ref init in
  let records = ref 0 and corrupt = ref 0 in
  let pos = ref start in
  let truncated = ref 0 in
  let continue = ref true in
  while !continue && !pos < n do
    match Codec.read_framed s ~pos:!pos with
    | Codec.Frame (r, next) ->
        acc := f !acc r;
        incr records;
        pos := next
    | Codec.Frame_corrupt next ->
        incr corrupt;
        pos := next
    | Codec.Frame_truncated ->
        truncated := n - !pos;
        continue := false
  done;
  ( !acc,
    {
      records = !records;
      bytes = n;
      corrupt_records = !corrupt;
      truncated_bytes = !truncated;
    } )

let shard_files ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         Scanf.sscanf_opt name "shard-%d.sbil" (fun i -> (i, Filename.concat dir name)))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let fold ~dir ~init ~f =
  List.fold_left
    (fun (acc, stats) (_, path) ->
      let acc, s = fold_shard path ~init:acc ~f in
      (acc, add_stats stats s))
    (init, zero_stats) (shard_files ~dir)

(* --- metadata --- *)

(* The site/predicate tables reuse the established text format: the meta
   file is a zero-run dataset, so offline tooling can read it directly. *)
let write_meta ~dir ds =
  ensure_dir dir;
  Dataset.save (Filename.concat dir meta_file) { ds with Dataset.runs = [||] }

let read_meta ~dir =
  let path = Filename.concat dir meta_file in
  if not (Sys.file_exists path) then raise (Format_error (path ^ ": missing meta file"));
  match Dataset.load path with
  | ds -> ds
  | exception Dataset.Parse_error m -> raise (Format_error (path ^ ": bad meta: " ^ m))

(* --- whole-log operations --- *)

let write_dataset ~dir ~shards ds =
  if shards < 1 then invalid_arg "Shard_log.write_dataset: shards must be >= 1";
  write_meta ~dir ds;
  let nruns = Array.length ds.Dataset.runs in
  let per = (nruns + shards - 1) / max shards 1 in
  let total = ref zero_stats in
  for shard = 0 to shards - 1 do
    let w = create_writer ~dir ~shard () in
    let lo = shard * per and hi = min nruns ((shard + 1) * per) in
    for i = lo to hi - 1 do
      append w ds.Dataset.runs.(i)
    done;
    total := add_stats !total (close_writer w)
  done;
  !total

let read_all ~dir =
  let meta = read_meta ~dir in
  let rev, stats = fold ~dir ~init:[] ~f:(fun acc r -> r :: acc) in
  let runs = Array.of_list (List.rev rev) in
  (* canonical merge: shard order is arbitrary, run ids are not *)
  Array.sort
    (fun (a : Report.t) (b : Report.t) -> Int.compare a.Report.run_id b.Report.run_id)
    runs;
  ({ meta with Dataset.runs }, stats)
