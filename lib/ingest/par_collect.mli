(** Parallel feedback collection across OCaml 5 domains.

    Run indices are fanned out in contiguous blocks, one per domain.  Each
    domain owns a private sampler, and every run's sampling stream is keyed
    by {!Sbi_runtime.Collect.run_seed} — a pure function of the collection
    seed and the run index — so the merged result is byte-identical to
    sequential {!Sbi_runtime.Collect.collect} for the same spec and seed,
    regardless of the domain count. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val collect :
  ?seed:int ->
  ?first_run:int ->
  ?domains:int ->
  Sbi_runtime.Collect.spec ->
  nruns:int ->
  Sbi_runtime.Dataset.t
(** Identical to sequential [Collect.collect ~seed ~first_run spec ~nruns];
    [domains] defaults to {!default_domains}. *)

val collect_to_log :
  ?seed:int ->
  ?first_run:int ->
  ?domains:int ->
  Sbi_runtime.Collect.spec ->
  nruns:int ->
  dir:string ->
  Shard_log.stats
(** The deployment path: writes meta, then each domain appends its block of
    reports to its own shard file (shard index = domain index), and the
    summed write stats are returned.  [Shard_log.read_all] on the resulting
    directory reproduces the sequential dataset exactly. *)
