open Sbi_runtime

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Contiguous blocks: domain d executes runs [first + lo_d, first + hi_d).
   Because every collection path reseeds the sampler per run with
   Collect.run_seed, block boundaries (and hence the domain count) cannot
   change any report. *)
let blocks ~nruns ~workers =
  let workers = max 1 (min workers (max nruns 1)) in
  let per = nruns / workers and rem = nruns mod workers in
  List.init workers (fun d ->
      let lo = (d * per) + min d rem in
      let hi = lo + per + (if d < rem then 1 else 0) in
      (d, lo, hi))

(* Lazy.force is not safe to race from several domains; compile the
   bytecode (if that engine is selected) before spawning. *)
let prepare_spec (spec : Collect.spec) =
  match spec.Collect.engine with
  | Collect.Bytecode -> ignore (Lazy.force spec.Collect.compiled)
  | Collect.Tree_walk -> ()

let spawn_blocks ?(seed = 0xc0ffee) ?(first_run = 0) ?domains spec ~nruns ~f =
  let workers = match domains with Some d when d > 0 -> d | _ -> default_domains () in
  prepare_spec spec;
  blocks ~nruns ~workers
  |> List.map (fun (d, lo, hi) ->
         Domain.spawn (fun () ->
             f d
               (Collect.collect_reports ~seed ~first_run:(first_run + lo) spec
                  ~nruns:(hi - lo))))
  |> List.map Domain.join

let collect ?seed ?first_run ?domains spec ~nruns =
  let chunks = spawn_blocks ?seed ?first_run ?domains spec ~nruns ~f:(fun _ rs -> rs) in
  Dataset.create ~transform:spec.Collect.transform (Array.concat chunks)

let collect_to_log ?seed ?first_run ?domains spec ~nruns ~dir =
  Shard_log.write_meta ~dir (Dataset.create ~transform:spec.Collect.transform [||]);
  spawn_blocks ?seed ?first_run ?domains spec ~nruns ~f:(fun shard reports ->
      let w = Shard_log.create_writer ~dir ~shard () in
      Array.iter (Shard_log.append w) reports;
      Shard_log.close_writer w)
  |> List.fold_left Shard_log.add_stats Shard_log.zero_stats
