(** Mergeable streaming aggregation of the §3.1 counts.

    The per-predicate counters F(P), S(P) and the per-site observation
    counters behind F(P obs), S(P obs) form a commutative monoid under
    {!empty} / {!merge}, with {!observe} folding in one report at a time.
    That means the pruning-stage analysis ({!Sbi_core.Prune},
    {!Sbi_core.Scores}) can run over a sharded report log of any size —
    per-shard partial aggregates merge into exactly the counts
    {!Sbi_core.Counts.compute} would produce on the materialized dataset
    (tested as an equivalence property). *)

type t = {
  nsites : int;
  npreds : int;
  pred_site : int array;
  f : int array;  (** F(P): failing runs where P observed true *)
  s : int array;  (** S(P): successful runs where P observed true *)
  f_obs_site : int array;  (** failing runs in which each site was sampled *)
  s_obs_site : int array;  (** successful runs in which each site was sampled *)
  mutable num_f : int;
  mutable num_s : int;
}

val empty : nsites:int -> npreds:int -> pred_site:int array -> t

val of_meta : Sbi_runtime.Dataset.t -> t
(** [empty] sized from a (possibly run-free) dataset's tables. *)

val observe : t -> Sbi_runtime.Report.t -> unit
(** Fold one report into the accumulator. *)

val merge : t -> t -> t
(** Monoid combine (commutative, associative, [empty] neutral). *)

val merge_into : into:t -> t -> unit
(** In-place variant: add [b]'s counters into [into]. *)

val to_counts : t -> Sbi_core.Counts.t
(** Expand per-site observation counters to the per-predicate view used by
    scoring; equals [Counts.compute] on the equivalent dataset. *)

val of_log : dir:string -> t * Sbi_runtime.Dataset.t * Shard_log.stats
(** Stream an entire shard log: the aggregate, the log's meta tables, and
    read stats — without ever materializing the report array. *)
