(** Binary wire format for feedback reports (the ingestion pipeline's
    record codec — see [docs/ingest.md] for the byte-level layout).

    A report payload is a versioned sequence of varints: run id, outcome
    byte, delta-encoded sorted site/predicate id arrays, the observed-true
    counts, ground-truth bug ids, and the optional crash signature.  On the
    paper's workload this is roughly an order of magnitude smaller than the
    line-oriented text format, because dense observation sets delta-encode
    to one byte per id.

    Framing for on-disk logs adds a varint length prefix and a CRC-32
    trailer per record, so a reader can skip corrupted records and detect
    truncated tails without aborting. *)

exception Corrupt of string
(** Raised by decoders on malformed input (never by frame readers, which
    translate corruption into {!Frame_corrupt} / {!Frame_truncated}). *)

val version : int
(** Format version written by {!encode}; decoders reject others. *)

(** {1 Payload codec} *)

val encode : Sbi_runtime.Report.t -> string
val encode_to : Buffer.t -> Sbi_runtime.Report.t -> unit

val decode : string -> Sbi_runtime.Report.t
(** Round-trip inverse of {!encode}: [decode (encode r) = r].
    @raise Corrupt on malformed payloads (including trailing bytes). *)

val decode_sub : string -> pos:int -> len:int -> Sbi_runtime.Report.t
(** Decode a payload embedded in a larger buffer.
    @raise Corrupt on malformed payloads.
    @raise Invalid_argument when the range is out of bounds. *)

(** {1 Record framing} *)

val add_framed : Buffer.t -> Sbi_runtime.Report.t -> unit
(** Append one framed record: varint payload length, payload, CRC-32 of the
    payload as 4 little-endian bytes. *)

type frame =
  | Frame of Sbi_runtime.Report.t * int
      (** a valid record and the offset just past its frame *)
  | Frame_corrupt of int
      (** checksum or payload failure; resume scanning at the offset *)
  | Frame_truncated
      (** the remaining bytes cannot hold a complete frame (a crashed
          writer's partial tail) *)

val read_framed : string -> pos:int -> frame
(** Parse one framed record starting at [pos].  A corrupted length prefix
    surfaces as {!Frame_corrupt} or {!Frame_truncated} on the following
    frame(s); per-record CRCs bound the damage to the affected records. *)

(** {1 Varints (exposed for tests and the shard-log header)} *)

val add_varint : Buffer.t -> int -> unit
(** Unsigned LEB128. @raise Invalid_argument on negative input. *)

val read_varint : string -> int ref -> int -> int
(** [read_varint s pos limit] reads at [!pos], advancing [pos]; input bytes
    must lie below [limit].  @raise Corrupt on overrun or overflow. *)
