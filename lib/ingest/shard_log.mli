(** Append-only, sharded, crash-tolerant on-disk report log.

    A log is a directory holding a [meta] file (the site/predicate tables,
    stored as a zero-run dataset in the established text format) and one
    [shard-NNNN.sbil] file per shard.  Each shard starts with a
    magic + format-version header followed by framed {!Codec} records.

    Recovery rules (a crashed or raced writer never poisons the corpus):
    - a record whose CRC or payload fails to decode is {e skipped} and
      counted in [corrupt_records];
    - an incomplete frame at the end of a shard (partial write) ends that
      shard's scan, with the remaining bytes counted in [truncated_bytes];
    - only a missing/invalid header or meta file raises {!Format_error}. *)

exception Format_error of string

val magic : string
val format_version : int

val meta_file : string
(** Name of the tables file inside a log (or index) directory. *)

type stats = {
  records : int;  (** records written (writer) or successfully read *)
  bytes : int;  (** bytes written / scanned, headers included *)
  corrupt_records : int;  (** records skipped on CRC/decode failure *)
  truncated_bytes : int;  (** unparseable tail bytes (crashed writer) *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : stats -> string

val shard_path : dir:string -> int -> string
(** [dir/shard-NNNN.sbil]. *)

val shard_files : dir:string -> (int * string) list
(** Shards present in a log directory, sorted by shard index. *)

val parse_header :
  string -> (int * int, [ `Torn_header | `Bad of string ]) result
(** Classify a shard file's bytes: [Ok (shard, first_record_offset)] for a
    valid header, [`Torn_header] for a strict prefix of one (a writer
    killed mid-header — an empty crashed shard, not a foreign file),
    [`Bad] for anything else. *)

(** {1 Writing} *)

type writer

val create_writer :
  ?io:Sbi_fault.Io.t ->
  ?fsync:bool ->
  ?append:bool ->
  dir:string ->
  shard:int ->
  unit ->
  writer
(** Creates [dir] if needed, truncates the shard file, writes the header.
    With [~append:true] (default false) an existing shard file is instead
    resumed: new records are appended after its current tail and no second
    header is written (a fresh file still gets one) — the streaming
    corpus generator's wave mode.
    With [~fsync:true] (default false) every {!append} flushes and
    [fsync]s before returning, so a record acknowledged to a client is on
    stable storage even if the process dies before {!close_writer} — the
    durability contract of the serving path's ingest command.  [?io]
    routes every write and fsync through the fault injector; the default
    is a zero-cost passthrough. *)

val append : writer -> Sbi_runtime.Report.t -> unit
(** {!append_raw} followed by {!sync} iff the writer was created with
    [~fsync:true]. *)

val append_raw : writer -> Sbi_runtime.Report.t -> unit
(** Buffered append that {e never} fsyncs, whatever the writer's fsync
    flag — the group-commit path: callers batch several raw appends and
    amortize one {!sync} across the whole window.  A raw-appended record
    is not durable (and must not be acknowledged) until a later {!sync}
    returns. *)

val sync : writer -> unit
(** Flush-and-fsync barrier: on return every prior {!append_raw} on this
    writer is on stable storage.  Timed under the [log.fsync] metric.
    Raises (e.g. [Unix_error (EIO, _, _)] under fault injection) when
    durability could not be established. *)

val writer_stats : writer -> stats

val close_writer : writer -> stats
(** Flushes and closes (idempotent); returns the writer's final stats. *)

val abandon_writer : writer -> stats
(** Close {e without} flushing: buffered un-synced appends are dropped
    on the floor, simulating a process kill inside the group-commit
    window.  Crash tests only; idempotent with {!close_writer}. *)

val write_meta : ?io:Sbi_fault.Io.t -> dir:string -> Sbi_runtime.Dataset.t -> unit
(** Stores the dataset's tables (runs are stripped) as [dir/meta]. *)

val write_dataset : dir:string -> shards:int -> Sbi_runtime.Dataset.t -> stats
(** Shards an in-memory dataset into a fresh log: meta plus [shards] shard
    files holding contiguous blocks of runs. *)

(** {1 Reading} *)

val read_meta : dir:string -> Sbi_runtime.Dataset.t
(** The table-only dataset stored by {!write_meta} (zero runs).
    @raise Format_error when missing or unreadable. *)

val fold_shard :
  ?io:Sbi_fault.Io.t ->
  string ->
  init:'a ->
  f:('a -> Sbi_runtime.Report.t -> 'a) ->
  'a * stats
(** Stream one shard file's intact records, applying the recovery rules. *)

val fold :
  ?io:Sbi_fault.Io.t ->
  dir:string ->
  init:'a ->
  f:('a -> Sbi_runtime.Report.t -> 'a) ->
  unit ->
  'a * stats
(** Stream every shard of a log in shard order, summing stats.  This is the
    streaming entry point: aggregation over logs larger than memory never
    materializes more than one record at a time. *)

val read_all : dir:string -> Sbi_runtime.Dataset.t * stats
(** Materialize a log as a dataset: meta tables plus every intact record,
    canonically merged by sorting on run id (so any shard assignment of the
    same runs yields the same dataset). *)
