open Sbi_runtime

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt
let version = 1

(* --- varints (unsigned LEB128) --- *)

(* A while loop, not an inner [let rec]: a local closure here would be
   allocated on every call, and segment encoding makes one call per
   posting entry — tens of millions per compaction. *)
let add_varint buf n =
  if n < 0 then invalid_arg "Codec.add_varint: negative";
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !n)

(* Reads a varint from [s] at [!pos], bounded by [limit]; advances [pos]. *)
let read_varint s pos limit =
  let v = ref 0 and shift = ref 0 and fin = ref false in
  while not !fin do
    if !pos >= limit then corrupt "varint runs past end of record";
    if !shift > 62 then corrupt "varint too wide";
    let b = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then fin := true
  done;
  !v

(* --- int-array encodings --- *)

(* Sorted, non-negative arrays (observed sites, true predicates) are
   delta-encoded: first element absolute, then successive differences.
   This keeps nearly all varints to one byte for dense observation sets. *)
let add_sorted_deltas buf arr =
  add_varint buf (Array.length arr);
  let prev = ref 0 in
  Array.iteri
    (fun i v ->
      if v < !prev then invalid_arg "Codec: array not sorted ascending";
      add_varint buf (if i = 0 then v else v - !prev);
      prev := v)
    arr

let read_sorted_deltas s pos limit =
  let n = read_varint s pos limit in
  if n > limit - !pos then corrupt "array count %d exceeds record bounds" n;
  let arr = Array.make n 0 in
  let prev = ref 0 in
  for i = 0 to n - 1 do
    let d = read_varint s pos limit in
    let v = if i = 0 then d else !prev + d in
    arr.(i) <- v;
    prev := v
  done;
  arr

(* Unordered non-negative arrays (ground-truth bug ids) and the counts
   parallel to [true_preds] are plain varint sequences. *)
let add_raw buf arr =
  add_varint buf (Array.length arr);
  Array.iter (fun v -> add_varint buf v) arr

let read_raw s pos limit =
  let n = read_varint s pos limit in
  if n > limit - !pos then corrupt "array count %d exceeds record bounds" n;
  Array.init n (fun _ -> read_varint s pos limit)

let read_raw_n s pos limit n = Array.init n (fun _ -> read_varint s pos limit)

(* --- report payload --- *)

let encode_to buf (r : Report.t) =
  add_varint buf version;
  add_varint buf r.Report.run_id;
  Buffer.add_char buf
    (match r.Report.outcome with Report.Success -> '\000' | Report.Failure -> '\001');
  add_sorted_deltas buf r.Report.observed_sites;
  add_sorted_deltas buf r.Report.true_preds;
  (* true_counts is parallel to true_preds, so its length is implicit *)
  Array.iter (fun c -> add_varint buf c) r.Report.true_counts;
  add_raw buf r.Report.bugs;
  match r.Report.crash_sig with
  | None -> Buffer.add_char buf '\000'
  | Some sg ->
      Buffer.add_char buf '\001';
      add_varint buf (String.length sg);
      Buffer.add_string buf sg

(* Sampled: encode/decode run at a few hundred ns, so clocking every
   call would not fit the <=2% instrumentation budget. *)
let obs_encode = Sbi_obs.Registry.Timer.create ~every:32 "codec.encode"
let obs_decode = Sbi_obs.Registry.Timer.create ~every:32 "codec.decode"

let encode r =
  Sbi_obs.Registry.Timer.time obs_encode (fun () ->
      let buf = Buffer.create 256 in
      encode_to buf r;
      Buffer.contents buf)

let decode_sub_impl s ~pos:start ~len =
  if start < 0 || len < 0 || start + len > String.length s then
    invalid_arg "Codec.decode_sub: out of bounds";
  let limit = start + len in
  let pos = ref start in
  let v = read_varint s pos limit in
  if v <> version then corrupt "unsupported record version %d" v;
  let run_id = read_varint s pos limit in
  if !pos >= limit then corrupt "record ends before outcome";
  let outcome =
    match s.[!pos] with
    | '\000' -> Report.Success
    | '\001' -> Report.Failure
    | c -> corrupt "bad outcome byte %d" (Char.code c)
  in
  incr pos;
  let observed_sites = read_sorted_deltas s pos limit in
  let true_preds = read_sorted_deltas s pos limit in
  let true_counts = read_raw_n s pos limit (Array.length true_preds) in
  let bugs = read_raw s pos limit in
  if !pos >= limit then corrupt "record ends before crash signature";
  let has_sig = s.[!pos] in
  incr pos;
  let crash_sig =
    match has_sig with
    | '\000' -> None
    | '\001' ->
        let n = read_varint s pos limit in
        if n > limit - !pos then corrupt "crash signature runs past end";
        let sg = String.sub s !pos n in
        pos := !pos + n;
        Some sg
    | c -> corrupt "bad crash-signature tag %d" (Char.code c)
  in
  if !pos <> limit then corrupt "%d trailing bytes in record" (limit - !pos);
  { Report.run_id; outcome; observed_sites; true_preds; true_counts; bugs; crash_sig }

let decode_sub s ~pos ~len =
  Sbi_obs.Registry.Timer.time obs_decode (fun () -> decode_sub_impl s ~pos ~len)

let decode s = decode_sub s ~pos:0 ~len:(String.length s)

(* --- framing: varint length + payload + CRC-32 (4 bytes LE) --- *)

let crc_bytes = 4

let add_framed buf r =
  let payload = encode r in
  add_varint buf (String.length payload);
  Buffer.add_string buf payload;
  let crc = Sbi_util.Crc32.string payload in
  for i = 0 to crc_bytes - 1 do
    Buffer.add_char buf (Char.unsafe_chr ((crc lsr (8 * i)) land 0xff))
  done

type frame = Frame of Report.t * int | Frame_corrupt of int | Frame_truncated

let read_framed s ~pos =
  let n = String.length s in
  let p = ref pos in
  match read_varint s p n with
  | exception Corrupt _ -> Frame_truncated
  | len ->
      if len > n - !p - crc_bytes then Frame_truncated
      else begin
        let payload_pos = !p in
        let crc_pos = payload_pos + len in
        let stored =
          let v = ref 0 in
          for i = crc_bytes - 1 downto 0 do
            v := (!v lsl 8) lor Char.code s.[crc_pos + i]
          done;
          !v
        in
        let next = crc_pos + crc_bytes in
        if Sbi_util.Crc32.sub s ~pos:payload_pos ~len <> stored then Frame_corrupt next
        else
          match decode_sub s ~pos:payload_pos ~len with
          | r -> Frame (r, next)
          | exception Corrupt _ -> Frame_corrupt next
      end
