(** Crash-recovery driver: kill-and-reopen the log → index pipeline at
    every injected fault point and check the durability contract.

    Each case runs a deterministic workload (seeded synthetic reports)
    under a {!Sbi_fault.Fault.spec}, lets the injected fault kill it
    mid-flight, then reopens the store the way a restarted process would
    (fault-free) and asserts the recovery invariants:

    - {b no acknowledged report is lost}: every append that returned
      (fsync included) is present after reopen;
    - {b no partial record is surfaced}: everything recovered is
      byte-identical to a report that was actually appended, and for
      crash faults the recovered set is a contiguous prefix of the
      append sequence;
    - for read-corruption faults (bit flips, short reads), damage is
      {e detected} — skipped/truncated, never decoded into garbage;
    - for index builds killed mid-write, {!Index.repair} followed by a
      rebuild yields a store {!Index.fsck} reports clean, indexing
      every log record, with no stray temp files left behind.

    {!run_matrix} sweeps a seeded matrix of kill points and fault
    probabilities over both the shard log and the index builder — the
    engine behind [cbi fault-check] and [make fault-check]. *)

type case_result = {
  case_name : string;
  case_ok : bool;
  case_detail : string;  (** failure reason, or a short success note *)
  case_acked : int;  (** appends acknowledged before the fault *)
  case_recovered : int;  (** records visible after reopen *)
  case_injected : int;  (** faults the injector actually fired *)
}

type summary = {
  cases : case_result list;  (** in execution order *)
  passed : int;
  failed : int;
}

val run_log_case :
  dir:string -> nreports:int -> spec:Sbi_fault.Fault.spec -> string -> case_result
(** Append [nreports] synthetic reports to a fresh fsync-per-append log
    at [dir] under [spec], stop at the first injected failure, reopen
    fault-free, and check the invariants.  The name tags the result. *)

val run_group_case :
  dir:string ->
  nreports:int ->
  batch:int ->
  ?kill_after:int ->
  spec:Sbi_fault.Fault.spec ->
  string ->
  case_result
(** The group-commit window crash model: append [nreports] synthetic
    reports as {e raw} (buffered, unfsynced) appends, running one
    {!Sbi_ingest.Shard_log.sync} barrier — and advancing the acked
    count — per [batch] reports.  [kill_after k] kills the process
    between appends once [k] reports are appended, {e abandoning} the
    writer so buffered records past the last barrier are genuinely lost;
    [spec] injects torn appends / failed barriers on top.  After a
    fault-free reopen the invariants are the ingest durability contract:
    every acked report recovered, the recovered set a contiguous
    byte-identical prefix of the append sequence (unacked reports may
    vanish or survive), no mid-log corruption. *)

val run_read_case :
  dir:string -> nreports:int -> spec:Sbi_fault.Fault.spec -> string -> case_result
(** Write a clean log, then read it back {e under} [spec] (bit flips,
    short reads): every surfaced record must be one that was written —
    corruption may shrink the result, never invent or alter records. *)

val run_index_case : dir:string -> kill_at:int -> string -> case_result
(** Build an index of a clean two-shard log with a kill scheduled at
    write number [kill_at] (meta, segments, manifest all count).  After
    the crash: {!Index.repair}, rebuild, and require a clean {!Index.fsck}
    covering every log record and a stray-free directory.  A [kill_at]
    beyond the build's writes degenerates to a fault-free build, which
    must also verify. *)

val run_compact_case : dir:string -> kill_at:int -> string -> case_result
(** Build a multi-segment index (append waves against a two-shard log),
    record its top-k ranking, then run {!Index.compact} with a kill
    scheduled at write number [kill_at] (merged segments and the
    manifest rewrite all count).  After the crash: {!Index.repair},
    re-{!Index.build} the rolled-back range, and re-{!Index.compact};
    require a clean stray-free {!Index.fsck} over every log record,
    fewer segments than before, and a {e bit-identical} ranking.  A
    [kill_at] beyond the compaction's writes degenerates to a fault-free
    compaction, which must also verify. *)

val run_matrix : ?verbose:bool -> scratch:string -> unit -> summary
(** The full seeded fault matrix (every-write kill sweep, probabilistic
    torn writes / fsync failures / disk-full / bit flips / short reads,
    index-build and compaction kill sweeps) under [scratch], one fresh
    subdirectory per case.  [verbose] prints one line per case to
    stdout. *)

val pp_summary : summary -> string
(** Failing cases in full plus a pass/fail tally. *)
