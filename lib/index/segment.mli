(** One immutable index segment: the inverted view of a contiguous byte
    range of one source shard file.

    A segment holds, for a batch of runs, the run-id array, a failing-run
    bitmap, per-site observation posting lists, and per-predicate
    observed-true posting lists — everything the triage queries need,
    with no per-run report records.  Posting lists store {e positions}
    within the segment (0 .. nruns-1), strictly increasing, so they
    delta-encode to roughly one byte per entry with {!Sbi_ingest.Codec}
    varints; the run-id array maps positions back to global run ids.

    On disk a segment is ["SBIX" | body | CRC-32(body)]: a damaged
    segment is detected as a unit and skipped by the index loader, the
    same recovery posture as the shard-log reader. *)

exception Corrupt of string

val magic : string
val format_version : int

type t = {
  source_shard : int;  (** shard index this segment was compiled from *)
  start_off : int;  (** first source byte consumed (inclusive) *)
  end_off : int;  (** last source byte consumed (exclusive) *)
  nsites : int;
  npreds : int;
  nruns : int;
  run_ids : int array;  (** position -> global run id *)
  failing : Bitset.t;  (** position bit set iff the run failed *)
  site_obs : int array array;  (** site -> sorted positions observed *)
  pred_true : int array array;  (** pred -> sorted positions observed true *)
}

val of_reports :
  nsites:int ->
  npreds:int ->
  source_shard:int ->
  start_off:int ->
  end_off:int ->
  Sbi_runtime.Report.t array ->
  t
(** Invert a report batch.  @raise Invalid_argument when a report refers
    to a site or predicate outside the declared tables. *)

val aggregator : pred_site:int array -> t -> Sbi_ingest.Aggregator.t
(** The segment's §3.1 partial aggregate, recovered from the inverted
    lists — equal to folding the source reports through
    {!Sbi_ingest.Aggregator.observe}. *)

val encode : t -> string
val decode : string -> t
(** @raise Corrupt on bad magic/version, CRC mismatch, or any structural
    violation (positions out of range or non-increasing). *)
