(** Fixed-size mutable bitsets over run slots.

    The query engine keys every per-segment run property (failing, alive
    during elimination, covered by a posting list) on a bitset indexed by
    the run's position within its segment, so counting a §3.1 quantity
    over the current run subset is a posting-list walk plus O(1) bit
    tests — no report records are ever materialized. *)

type t

val create : int -> t
(** All bits clear. *)

val full : int -> t
(** All bits set. *)

val copy : t -> t
val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val count : t -> int
(** Number of set bits. *)

val count_and : t -> t -> int
(** [count_and a b]: set bits of the intersection.
    @raise Invalid_argument on length mismatch. *)

val of_positions : int -> int array -> t
(** [of_positions n ps]: bits [ps] set in a bitset of length [n]. *)
