include Sbi_store.Segment
