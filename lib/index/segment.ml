open Sbi_runtime
open Sbi_ingest

exception Corrupt of string

let magic = "SBIX"
let format_version = 1

type t = {
  source_shard : int;
  start_off : int;
  end_off : int;
  nsites : int;
  npreds : int;
  nruns : int;
  run_ids : int array;
  failing : Bitset.t;
  site_obs : int array array;
  pred_true : int array array;
}

let of_reports ~nsites ~npreds ~source_shard ~start_off ~end_off reports =
  let nruns = Array.length reports in
  let run_ids = Array.map (fun (r : Report.t) -> r.Report.run_id) reports in
  let failing = Bitset.create nruns in
  let site_acc = Array.make (max nsites 1) [] in
  let pred_acc = Array.make (max npreds 1) [] in
  (* Postings record membership, not multiplicity (counts live in
     [true_counts]), so a site or predicate repeated within one report
     must contribute a single position — duplicates would break the
     strictly-increasing delta encoding. *)
  let push acc i pos =
    match acc.(i) with
    | hd :: _ when hd = pos -> ()
    | _ -> acc.(i) <- pos :: acc.(i)
  in
  Array.iteri
    (fun pos (r : Report.t) ->
      if Report.outcome_is_failure r.Report.outcome then Bitset.set failing pos;
      Array.iter
        (fun site ->
          if site < 0 || site >= nsites then
            invalid_arg (Printf.sprintf "Segment.of_reports: site %d out of range" site);
          push site_acc site pos)
        r.Report.observed_sites;
      Array.iter
        (fun pred ->
          if pred < 0 || pred >= npreds then
            invalid_arg (Printf.sprintf "Segment.of_reports: predicate %d out of range" pred);
          push pred_acc pred pos)
        r.Report.true_preds)
    reports;
  (* positions were consed in increasing order, so a reverse restores it *)
  let to_postings acc n = Array.init n (fun i -> Array.of_list (List.rev acc.(i))) in
  {
    source_shard;
    start_off;
    end_off;
    nsites;
    npreds;
    nruns;
    run_ids;
    failing;
    site_obs = to_postings site_acc nsites;
    pred_true = to_postings pred_acc npreds;
  }

let aggregator ~pred_site t =
  let agg = Aggregator.empty ~nsites:t.nsites ~npreds:t.npreds ~pred_site in
  let num_f = Bitset.count t.failing in
  agg.Aggregator.num_f <- num_f;
  agg.Aggregator.num_s <- t.nruns - num_f;
  let split counter_f counter_s postings =
    Array.iteri
      (fun i posting ->
        Array.iter
          (fun pos ->
            if Bitset.get t.failing pos then counter_f.(i) <- counter_f.(i) + 1
            else counter_s.(i) <- counter_s.(i) + 1)
          posting)
      postings
  in
  split agg.Aggregator.f_obs_site agg.Aggregator.s_obs_site t.site_obs;
  split agg.Aggregator.f agg.Aggregator.s t.pred_true;
  agg

(* --- binary encoding --- *)

let add_posting buf posting =
  Codec.add_varint buf (Array.length posting);
  let prev = ref 0 in
  Array.iteri
    (fun i pos ->
      Codec.add_varint buf (if i = 0 then pos else pos - !prev);
      prev := pos)
    posting

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.add_varint buf format_version;
  Codec.add_varint buf t.source_shard;
  Codec.add_varint buf t.start_off;
  Codec.add_varint buf t.end_off;
  Codec.add_varint buf t.nsites;
  Codec.add_varint buf t.npreds;
  Codec.add_varint buf t.nruns;
  Array.iter (Codec.add_varint buf) t.run_ids;
  let nbytes = (t.nruns + 7) / 8 in
  let bitmap = Bytes.make nbytes '\000' in
  for pos = 0 to t.nruns - 1 do
    if Bitset.get t.failing pos then
      Bytes.set bitmap (pos / 8)
        (Char.chr (Char.code (Bytes.get bitmap (pos / 8)) lor (1 lsl (pos mod 8))))
  done;
  Buffer.add_bytes buf bitmap;
  Array.iter (add_posting buf) t.site_obs;
  Array.iter (add_posting buf) t.pred_true;
  let body = Buffer.contents buf in
  let crc = Sbi_util.Crc32.sub body ~pos:(String.length magic) ~len:(String.length body - String.length magic) in
  let out = Buffer.create (String.length body + 4) in
  Buffer.add_string out body;
  for i = 0 to 3 do
    Buffer.add_char out (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Buffer.contents out

let read_posting s pos limit ~nruns =
  let len = Codec.read_varint s pos limit in
  if len > nruns then raise (Corrupt "posting longer than run count");
  let posting = Array.make len 0 in
  let prev = ref (-1) in
  for i = 0 to len - 1 do
    let v = Codec.read_varint s pos limit in
    let p = if i = 0 then v else !prev + v in
    if i > 0 && v = 0 then raise (Corrupt "posting positions not strictly increasing");
    if p >= nruns then raise (Corrupt "posting position out of range");
    posting.(i) <- p;
    prev := p
  done;
  posting

let decode s =
  let n = String.length s in
  if n < String.length magic + 4 || String.sub s 0 (String.length magic) <> magic then
    raise (Corrupt "bad magic");
  let body_len = n - 4 in
  let stored =
    let b i = Char.code s.[body_len + i] in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  in
  let computed =
    Sbi_util.Crc32.sub s ~pos:(String.length magic) ~len:(body_len - String.length magic)
  in
  if stored <> computed then raise (Corrupt "CRC mismatch");
  let pos = ref (String.length magic) in
  try
    let rd () = Codec.read_varint s pos body_len in
    let version = rd () in
    if version <> format_version then
      raise (Corrupt (Printf.sprintf "unsupported segment version %d" version));
    let source_shard = rd () in
    let start_off = rd () in
    let end_off = rd () in
    let nsites = rd () in
    let npreds = rd () in
    let nruns = rd () in
    let run_ids = Array.init nruns (fun _ -> rd ()) in
    let nbytes = (nruns + 7) / 8 in
    if !pos + nbytes > body_len then raise (Corrupt "truncated outcome bitmap");
    let failing = Bitset.create nruns in
    for p = 0 to nruns - 1 do
      if Char.code s.[!pos + (p / 8)] land (1 lsl (p mod 8)) <> 0 then Bitset.set failing p
    done;
    pos := !pos + nbytes;
    let site_obs = Array.init nsites (fun _ -> read_posting s pos body_len ~nruns) in
    let pred_true = Array.init npreds (fun _ -> read_posting s pos body_len ~nruns) in
    if !pos <> body_len then raise (Corrupt "trailing bytes in segment body");
    { source_shard; start_off; end_off; nsites; npreds; nruns; run_ids; failing; site_obs; pred_true }
  with Codec.Corrupt m -> raise (Corrupt m)
