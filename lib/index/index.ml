open Sbi_runtime
open Sbi_ingest

exception Format_error of string

let manifest_magic = "sbi-index"
let manifest_version = 1
let manifest_file dir = Filename.concat dir "manifest"
let seg_file_name i = Printf.sprintf "seg-%04d.sbix" i

type build_stats = {
  segments_added : int;
  records_indexed : int;
  corrupt_skipped : int;
  bytes_consumed : int;
}

type open_stats = { segments_loaded : int; segments_corrupt : int; records_loaded : int }

type tail = {
  mutable t_reports : Report.t array;
  mutable t_len : int;
  t_agg : Aggregator.t;
  mutable t_cache : Segment.t option;
}

type t = {
  dir : string;
  meta : Dataset.t;
  log_dir : string option;
  segments : Segment.t array;
  seg_aggs : Aggregator.t array;
  stats : open_stats;
  tail : tail;
  mutable epoch : int;  (* bumped by every accepted append *)
  mutable snap : Snapshot.t option;  (* cache, valid while epochs match *)
}

(* --- manifest --- *)

type mseg = { m_file : string; m_shard : int; m_start : int; m_end : int; m_runs : int }

type manifest = {
  man_log : string option;
  man_consumed : (int * int) list;  (* source shard -> bytes consumed *)
  man_segs : mseg list;  (* in creation order *)
}

let empty_manifest = { man_log = None; man_consumed = []; man_segs = [] }

let render_manifest m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" manifest_magic manifest_version);
  (match m.man_log with Some d -> Buffer.add_string buf ("log " ^ d ^ "\n") | None -> ());
  List.iter
    (fun (shard, bytes) -> Buffer.add_string buf (Printf.sprintf "shard %d consumed %d\n" shard bytes))
    (List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) m.man_consumed);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "segment %s shard %d range %d %d runs %d\n" s.m_file s.m_shard
           s.m_start s.m_end s.m_runs))
    m.man_segs;
  Buffer.contents buf

let parse_manifest path s =
  let fail line msg =
    raise (Format_error (Printf.sprintf "%s:%d: %s" path line msg))
  in
  let lines = String.split_on_char '\n' s in
  match lines with
  | [] -> fail 1 "empty manifest"
  | header :: rest -> (
      (match String.split_on_char ' ' header with
      | [ m; v ] when m = manifest_magic -> (
          match int_of_string_opt v with
          | Some v when v = manifest_version -> ()
          | Some v -> fail 1 (Printf.sprintf "unsupported manifest version %d" v)
          | None -> fail 1 "bad manifest version")
      | _ -> fail 1 "not an index manifest");
      let man = ref empty_manifest in
      List.iteri
        (fun i line ->
          let lineno = i + 2 in
          if line <> "" then
            if String.length line > 4 && String.sub line 0 4 = "log " then
              man := { !man with man_log = Some (String.sub line 4 (String.length line - 4)) }
            else
              match Scanf.sscanf_opt line "shard %d consumed %d%!" (fun a b -> (a, b)) with
              | Some (shard, bytes) ->
                  man := { !man with man_consumed = (shard, bytes) :: !man.man_consumed }
              | None -> (
                  match
                    Scanf.sscanf_opt line "segment %s shard %d range %d %d runs %d%!"
                      (fun f sh a b r ->
                        { m_file = f; m_shard = sh; m_start = a; m_end = b; m_runs = r })
                  with
                  | Some seg -> man := { !man with man_segs = seg :: !man.man_segs }
                  | None -> fail lineno ("unrecognized manifest line: " ^ line)))
        rest;
      { !man with man_consumed = List.rev !man.man_consumed; man_segs = List.rev !man.man_segs })

let read_file ?io path = Sbi_fault.Io.read_file ?io path

let write_file_atomic ?io path content = Sbi_fault.Io.write_file_atomic ?io path content

let load_manifest dir =
  let path = manifest_file dir in
  if not (Sys.file_exists path) then raise (Format_error (path ^ ": missing manifest"));
  parse_manifest path (read_file path)

let load_meta dir =
  try Shard_log.read_meta ~dir
  with Shard_log.Format_error m -> raise (Format_error m)

let tables_match (a : Dataset.t) (b : Dataset.t) =
  a.Dataset.nsites = b.Dataset.nsites
  && a.Dataset.npreds = b.Dataset.npreds
  && a.Dataset.pred_site = b.Dataset.pred_site

(* --- building --- *)

(* Offset of the first record in a shard file, or None for a header torn
   by a killed writer (an empty crashed shard: nothing to index yet, and
   nothing was ever acknowledged from it). *)
let shard_header_end path s =
  match Shard_log.parse_header s with
  | Ok (_, off) -> Some off
  | Error `Torn_header -> None
  | Error (`Bad m) -> raise (Format_error (path ^ ": " ^ m))

(* Scan framed records in [s] from [start]: intact reports, corrupt count,
   and the clean resume offset (start of any truncated tail, else EOF). *)
let scan_range s ~start =
  let n = String.length s in
  let reports = ref [] in
  let corrupt = ref 0 in
  let pos = ref start in
  let continue = ref true in
  while !continue && !pos < n do
    match Codec.read_framed s ~pos:!pos with
    | Codec.Frame (r, next) ->
        reports := r :: !reports;
        pos := next
    | Codec.Frame_corrupt next ->
        incr corrupt;
        pos := next
    | Codec.Frame_truncated -> continue := false
  done;
  (Array.of_list (List.rev !reports), !corrupt, !pos)

let next_seg_id man =
  List.fold_left
    (fun acc s ->
      match Scanf.sscanf_opt s.m_file "seg-%d.sbix%!" (fun i -> i) with
      | Some i -> max acc (i + 1)
      | None -> acc)
    0 man.man_segs

let build_impl ?io ~log ~dir () =
  let log_meta =
    try Shard_log.read_meta ~dir:log
    with Shard_log.Format_error m -> raise (Format_error m)
  in
  let man =
    if Sys.file_exists (manifest_file dir) then begin
      let meta = load_meta dir in
      if not (tables_match meta log_meta) then
        raise
          (Format_error
             (Printf.sprintf "%s: site/predicate tables do not match log %s" dir log));
      load_manifest dir
    end
    else begin
      (* fresh index: establish the directory and tables *)
      Shard_log.write_meta ?io ~dir log_meta;
      empty_manifest
    end
  in
  let next_id = ref (next_seg_id man) in
  let consumed = ref man.man_consumed in
  let new_segs = ref [] in
  let stats = ref { segments_added = 0; records_indexed = 0; corrupt_skipped = 0; bytes_consumed = 0 } in
  List.iter
    (fun (shard, path) ->
      let s = read_file path in
      let n = String.length s in
      let already = match List.assoc_opt shard !consumed with Some b -> b | None -> 0 in
      let start =
        if already = 0 then match shard_header_end path s with Some off -> off | None -> n
        else already
      in
      if start < n then begin
        let reports, corrupt, stop = scan_range s ~start in
        (if Array.length reports > 0 then begin
           let seg =
             Segment.of_reports ~nsites:log_meta.Dataset.nsites ~npreds:log_meta.Dataset.npreds
               ~source_shard:shard ~start_off:start ~end_off:stop reports
           in
           let file = seg_file_name !next_id in
           incr next_id;
           write_file_atomic ?io (Filename.concat dir file) (Segment.encode seg);
           new_segs :=
             { m_file = file; m_shard = shard; m_start = start; m_end = stop;
               m_runs = seg.Segment.nruns }
             :: !new_segs;
           stats :=
             { !stats with
               segments_added = !stats.segments_added + 1;
               records_indexed = !stats.records_indexed + Array.length reports }
         end);
        stats :=
          { !stats with
            corrupt_skipped = !stats.corrupt_skipped + corrupt;
            bytes_consumed = !stats.bytes_consumed + (stop - start) };
        consumed := (shard, stop) :: List.remove_assoc shard !consumed
      end)
    (Shard_log.shard_files ~dir:log);
  let man =
    {
      man_log = Some log;
      man_consumed = !consumed;
      man_segs = man.man_segs @ List.rev !new_segs;
    }
  in
  write_file_atomic ?io (manifest_file dir) (render_manifest man);
  !stats

let build ?io ~log ~dir () =
  Sbi_obs.Trace.with_span ~name:"index.build" ~args:log (fun () -> build_impl ?io ~log ~dir ())

(* --- opening --- *)

let empty_tail meta =
  {
    t_reports = [||];
    t_len = 0;
    t_agg = Aggregator.of_meta meta;
    t_cache = None;
  }

let open_body pool ~dir =
  let meta = load_meta dir in
  let man = load_manifest dir in
  (* decode + aggregate one segment: pure CPU work on an immutable file,
     safe and profitable to fan across the domain pool *)
  let load m =
    let path = Filename.concat dir m.m_file in
    if not (Sys.file_exists path) then Error "missing file"
    else
      match Segment.decode (read_file path) with
      | seg ->
          if seg.Segment.nsites <> meta.Dataset.nsites
             || seg.Segment.npreds <> meta.Dataset.npreds
          then Error "table size mismatch"
          else Ok (seg, Segment.aggregator ~pred_site:meta.Dataset.pred_site seg)
      | exception Segment.Corrupt msg -> Error msg
  in
  let entries = Array.of_list man.man_segs in
  let results =
    match pool with
    | Some pool -> Sbi_par.Domain_pool.map_array pool load entries
    | None -> Array.map load entries
  in
  let segs = ref [] in
  let aggs = ref [] in
  let loaded = ref 0 and corrupt = ref 0 and records = ref 0 in
  Array.iter
    (function
      | Ok (seg, agg) ->
          segs := seg :: !segs;
          aggs := agg :: !aggs;
          incr loaded;
          records := !records + seg.Segment.nruns
      | Error _ -> incr corrupt)
    results;
  {
    dir;
    meta;
    log_dir = man.man_log;
    segments = Array.of_list (List.rev !segs);
    seg_aggs = Array.of_list (List.rev !aggs);
    stats = { segments_loaded = !loaded; segments_corrupt = !corrupt; records_loaded = !records };
    tail = empty_tail meta;
    epoch = 0;
    snap = None;
  }

let open_impl pool ~dir =
  Sbi_obs.Trace.with_span ~name:"index.open" ~args:dir (fun () -> open_body pool ~dir)

let open_ ~dir = open_impl None ~dir
let open_par ~pool ~dir = open_impl (Some pool) ~dir

(* --- live tail --- *)

let validate_report meta (r : Report.t) =
  if r.Report.run_id < 0 then invalid_arg "Index.append: negative run id";
  Array.iter
    (fun site ->
      if site < 0 || site >= meta.Dataset.nsites then
        invalid_arg (Printf.sprintf "Index.append: site %d out of range" site))
    r.Report.observed_sites;
  Array.iter
    (fun pred ->
      if pred < 0 || pred >= meta.Dataset.npreds then
        invalid_arg (Printf.sprintf "Index.append: predicate %d out of range" pred))
    r.Report.true_preds

let validate t r = validate_report t.meta r

let append t r =
  validate_report t.meta r;
  let tail = t.tail in
  if tail.t_len = Array.length tail.t_reports then begin
    let cap = max 16 (2 * Array.length tail.t_reports) in
    let grown = Array.make cap r in
    Array.blit tail.t_reports 0 grown 0 tail.t_len;
    tail.t_reports <- grown
  end;
  tail.t_reports.(tail.t_len) <- r;
  tail.t_len <- tail.t_len + 1;
  Aggregator.observe tail.t_agg r;
  tail.t_cache <- None;
  (* the write side of the epoch protocol: any snapshot built before this
     append is now stale (readers still holding it stay consistent) *)
  t.epoch <- t.epoch + 1

let tail_count t = t.tail.t_len

let tail_segment t =
  if t.tail.t_len = 0 then None
  else
    match t.tail.t_cache with
    | Some seg -> Some seg
    | None ->
        let seg =
          Segment.of_reports ~nsites:t.meta.Dataset.nsites ~npreds:t.meta.Dataset.npreds
            ~source_shard:(-1) ~start_off:0 ~end_off:0
            (Array.sub t.tail.t_reports 0 t.tail.t_len)
        in
        t.tail.t_cache <- Some seg;
        Some seg

let tail_aggregator t = t.tail.t_agg
let epoch t = t.epoch

(* --- epoch-versioned snapshot --- *)

let merged_counts t =
  let acc = Aggregator.of_meta t.meta in
  Array.iter (fun a -> Aggregator.merge_into ~into:acc a) t.seg_aggs;
  Aggregator.merge_into ~into:acc t.tail.t_agg;
  Aggregator.to_counts acc

let all_segments t =
  match tail_segment t with
  | Some tail -> Array.append t.segments [| tail |]
  | None -> t.segments

let snapshot ?pool t =
  match t.snap with
  | Some s when Snapshot.epoch s = t.epoch -> s
  | _ ->
      (* only the rebuild branch is a span: cache hits are the common
         case and must stay free of instrumentation *)
      let s =
        Sbi_obs.Trace.with_span ~name:"index.snapshot"
          ~args:(Printf.sprintf "epoch=%d" t.epoch) (fun () ->
            Snapshot.build ?pool ~epoch:t.epoch ~meta:t.meta ~counts:(merged_counts t)
              (all_segments t))
      in
      t.snap <- Some s;
      s

let nruns t =
  Array.fold_left (fun acc (s : Segment.t) -> acc + s.Segment.nruns) t.tail.t_len t.segments

let num_failures t =
  Array.fold_left
    (fun acc (s : Segment.t) -> acc + Bitset.count s.Segment.failing)
    t.tail.t_agg.Aggregator.num_f t.segments

(* --- fsck --- *)

type fsck_seg = { seg_file : string; seg_ok : bool; seg_runs : int; seg_error : string option }

type fsck_report = {
  fsck_segments : fsck_seg list;
  fsck_ok : int;
  fsck_corrupt : int;
  fsck_records : int;
}

let fsck ~dir =
  let meta = load_meta dir in
  let man = load_manifest dir in
  let check m =
    let path = Filename.concat dir m.m_file in
    if not (Sys.file_exists path) then Error "missing file"
    else
      match Segment.decode (read_file path) with
      | exception Segment.Corrupt msg -> Error msg
      | seg ->
          if seg.Segment.nsites <> meta.Dataset.nsites || seg.Segment.npreds <> meta.Dataset.npreds
          then Error "table size mismatch with meta"
          else if seg.Segment.nruns <> m.m_runs then
            Error
              (Printf.sprintf "run count %d disagrees with manifest (%d)" seg.Segment.nruns
                 m.m_runs)
          else if seg.Segment.source_shard <> m.m_shard then
            Error "source shard disagrees with manifest"
          else Ok seg
  in
  let segs =
    List.map
      (fun m ->
        match check m with
        | Ok seg ->
            { seg_file = m.m_file; seg_ok = true; seg_runs = seg.Segment.nruns; seg_error = None }
        | Error msg -> { seg_file = m.m_file; seg_ok = false; seg_runs = 0; seg_error = Some msg })
      man.man_segs
  in
  let ok = List.length (List.filter (fun s -> s.seg_ok) segs) in
  {
    fsck_segments = segs;
    fsck_ok = ok;
    fsck_corrupt = List.length segs - ok;
    fsck_records = List.fold_left (fun acc s -> acc + s.seg_runs) 0 segs;
  }

(* --- repair --- *)

type repair_report = {
  rep_dropped : string list;
  rep_removed : string list;
  rep_rollbacks : (int * int * int) list;
}

(* A damaged segment invalidates everything indexed after it from the same
   source shard: the consumed offset only records the high-water mark, so
   the sole way to re-index the lost byte range is to roll the shard's
   offset back to the first bad segment's start and drop that segment plus
   every later segment of the shard (their ranges would otherwise overlap
   the re-indexed bytes and double-count runs).  The next {!build} then
   re-consumes from the rollback point. *)
let repair ~dir =
  let clean_strays removed =
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".tmp" then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          removed := name :: !removed
        end)
      (Sys.readdir dir)
  in
  if not (Sys.file_exists (Filename.concat dir Shard_log.meta_file)) then begin
    (* killed before the tables ever hit disk: nothing in the directory is
       trustworthy, so reset it to the fresh state the next build expects *)
    let removed = ref [] in
    let dropped = ref [] in
    Array.iter
      (fun name ->
        let is_seg = Scanf.sscanf_opt name "seg-%d.sbix%!" (fun i -> i) <> None in
        if is_seg || name = "manifest" then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          removed := name :: !removed;
          if is_seg then dropped := name :: !dropped
        end)
      (Sys.readdir dir);
    clean_strays removed;
    {
      rep_dropped = List.rev !dropped;
      rep_removed = List.sort_uniq String.compare !removed;
      rep_rollbacks = [];
    }
  end
  else begin
  let meta = load_meta dir in
  let man =
    (* killed between meta and the first manifest write: an empty manifest
       makes the next build re-index from scratch *)
    if Sys.file_exists (manifest_file dir) then load_manifest dir else empty_manifest
  in
  let seg_bad m =
    let path = Filename.concat dir m.m_file in
    if not (Sys.file_exists path) then true
    else
      match Segment.decode (read_file path) with
      | exception Segment.Corrupt _ -> true
      | seg ->
          seg.Segment.nsites <> meta.Dataset.nsites
          || seg.Segment.npreds <> meta.Dataset.npreds
          || seg.Segment.nruns <> m.m_runs
          || seg.Segment.source_shard <> m.m_shard
  in
  let poisoned = Hashtbl.create 8 in
  (* shard -> rollback offset *)
  let keep, dropped =
    List.partition
      (fun m ->
        if Hashtbl.mem poisoned m.m_shard then false
        else if seg_bad m then begin
          Hashtbl.replace poisoned m.m_shard m.m_start;
          false
        end
        else true)
      man.man_segs
  in
  let rollbacks = ref [] in
  let consumed =
    List.map
      (fun (shard, bytes) ->
        match Hashtbl.find_opt poisoned shard with
        | Some back when back < bytes ->
            rollbacks := (shard, bytes, back) :: !rollbacks;
            (shard, back)
        | _ -> (shard, bytes))
      man.man_consumed
  in
  let kept_files = List.map (fun m -> m.m_file) keep in
  let removed = ref [] in
  let remove_file name =
    let path = Filename.concat dir name in
    if Sys.file_exists path then begin
      (try Sys.remove path with Sys_error _ -> ());
      removed := name :: !removed
    end
  in
  (* dropped segments, orphan segment files a crashed build left unlisted,
     and stray temp files from killed atomic writes *)
  List.iter (fun m -> remove_file m.m_file) dropped;
  Array.iter
    (fun name ->
      let is_seg = Scanf.sscanf_opt name "seg-%d.sbix%!" (fun i -> i) <> None in
      let is_tmp = Filename.check_suffix name ".tmp" in
      if (is_seg && not (List.mem name kept_files)) || is_tmp then remove_file name)
    (Sys.readdir dir);
  let man = { man with man_consumed = consumed; man_segs = keep } in
  write_file_atomic (manifest_file dir) (render_manifest man);
  {
    rep_dropped = List.map (fun m -> m.m_file) dropped;
    rep_removed = List.sort_uniq String.compare !removed;
    rep_rollbacks = List.rev !rollbacks;
  }
  end

let pp_repair r =
  let buf = Buffer.create 256 in
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "  dropped %s\n" f))
    r.rep_dropped;
  List.iter
    (fun f ->
      if not (List.mem f r.rep_dropped) then
        Buffer.add_string buf (Printf.sprintf "  removed stray %s\n" f))
    r.rep_removed;
  List.iter
    (fun (shard, from_, to_) ->
      Buffer.add_string buf
        (Printf.sprintf "  shard %d rolled back %d -> %d\n" shard from_ to_))
    r.rep_rollbacks;
  Buffer.add_string buf
    (Printf.sprintf "%d segment(s) dropped, %d file(s) removed, %d shard(s) rolled back\n"
       (List.length r.rep_dropped) (List.length r.rep_removed)
       (List.length r.rep_rollbacks));
  Buffer.contents buf

let pp_fsck r =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      match s.seg_error with
      | None -> Buffer.add_string buf (Printf.sprintf "  %s: ok, %d runs\n" s.seg_file s.seg_runs)
      | Some e -> Buffer.add_string buf (Printf.sprintf "  %s: CORRUPT (%s)\n" s.seg_file e))
    r.fsck_segments;
  Buffer.add_string buf
    (Printf.sprintf "%d segment(s): %d ok, %d corrupt, %d runs indexed\n" (List.length r.fsck_segments)
       r.fsck_ok r.fsck_corrupt r.fsck_records);
  Buffer.contents buf
