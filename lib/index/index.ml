open Sbi_runtime
open Sbi_ingest
module Tier = Sbi_store.Tier

exception Format_error of string

let manifest_magic = "sbi-index"
let manifest_version = 2
let manifest_file dir = Filename.concat dir "manifest"
let seg_file_name i = Printf.sprintf "seg-%04d.sbix" i
let seg_file_id name = Scanf.sscanf_opt name "seg-%d.sbix%!" (fun i -> i)

type build_stats = {
  segments_added : int;
  records_indexed : int;
  corrupt_skipped : int;
  bytes_consumed : int;
}

type open_stats = { segments_loaded : int; segments_corrupt : int; records_loaded : int }

type tail = {
  mutable t_reports : Report.t array;
  mutable t_len : int;
  t_agg : Aggregator.t;
  mutable t_cache : Segment.t option;
}

type t = {
  dir : string;
  meta : Dataset.t;
  log_dir : string option;
  segments : Segref.t array;
  seg_aggs : Aggregator.t array;
  cache : Segref.cache;
  stats : open_stats;
  tail : tail;
  mutable epoch : int;  (* bumped by every accepted append *)
  mutable snap : Snapshot.t option;  (* cache, valid while epochs match *)
}

(* --- manifest --- *)

(* A leaf segment covers one byte range of one source shard ([m_cover] is
   a singleton); a merged segment produced by compaction covers the
   concatenation of its inputs' ranges, in run order.  The cover list is
   what repair needs to roll consumed offsets back when a segment is
   lost — the provenance triple inside a merged file is zeroed. *)
type mseg = {
  m_file : string;
  m_cover : (int * int * int) list;  (* (shard, start, end) in run order *)
  m_runs : int;
  m_merged : bool;
}

type manifest = {
  man_log : string option;
  man_consumed : (int * int) list;  (* source shard -> bytes consumed *)
  man_segs : mseg list;  (* in run order *)
}

let empty_manifest = { man_log = None; man_consumed = []; man_segs = [] }

let render_manifest m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" manifest_magic manifest_version);
  (match m.man_log with Some d -> Buffer.add_string buf ("log " ^ d ^ "\n") | None -> ());
  List.iter
    (fun (shard, bytes) -> Buffer.add_string buf (Printf.sprintf "shard %d consumed %d\n" shard bytes))
    (List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) m.man_consumed);
  List.iter
    (fun s ->
      match (s.m_merged, s.m_cover) with
      | false, [ (shard, a, b) ] ->
          Buffer.add_string buf
            (Printf.sprintf "segment %s shard %d range %d %d runs %d\n" s.m_file shard a b
               s.m_runs)
      | _ ->
          Buffer.add_string buf
            (Printf.sprintf "merged %s runs %d cover %d%s\n" s.m_file s.m_runs
               (List.length s.m_cover)
               (String.concat ""
                  (List.map
                     (fun (shard, a, b) -> Printf.sprintf " %d %d %d" shard a b)
                     s.m_cover))))
    m.man_segs;
  Buffer.contents buf

let parse_manifest path s =
  let fail line msg =
    raise (Format_error (Printf.sprintf "%s:%d: %s" path line msg))
  in
  let lines = String.split_on_char '\n' s in
  match lines with
  | [] -> fail 1 "empty manifest"
  | header :: rest -> (
      (match String.split_on_char ' ' header with
      | [ m; v ] when m = manifest_magic -> (
          match int_of_string_opt v with
          | Some v when v >= 1 && v <= manifest_version -> ()
          | Some v -> fail 1 (Printf.sprintf "unsupported manifest version %d" v)
          | None -> fail 1 "bad manifest version")
      | _ -> fail 1 "not an index manifest");
      let man = ref empty_manifest in
      let parse_merged lineno line =
        match String.split_on_char ' ' line with
        | "merged" :: file :: "runs" :: r :: "cover" :: k :: rest -> (
            match (int_of_string_opt r, int_of_string_opt k) with
            | Some runs, Some k when k >= 1 && List.length rest = 3 * k -> (
                match List.map int_of_string_opt rest with
                | ints when List.for_all Option.is_some ints ->
                    let ints = Array.of_list (List.map Option.get ints) in
                    let cover =
                      List.init k (fun i ->
                          (ints.(3 * i), ints.((3 * i) + 1), ints.((3 * i) + 2)))
                    in
                    { m_file = file; m_cover = cover; m_runs = runs; m_merged = true }
                | _ -> fail lineno ("bad merged cover: " ^ line))
            | _ -> fail lineno ("bad merged line: " ^ line))
        | _ -> fail lineno ("unrecognized manifest line: " ^ line)
      in
      List.iteri
        (fun i line ->
          let lineno = i + 2 in
          if line <> "" then
            if String.length line > 4 && String.sub line 0 4 = "log " then
              man := { !man with man_log = Some (String.sub line 4 (String.length line - 4)) }
            else
              match Scanf.sscanf_opt line "shard %d consumed %d%!" (fun a b -> (a, b)) with
              | Some (shard, bytes) ->
                  man := { !man with man_consumed = (shard, bytes) :: !man.man_consumed }
              | None -> (
                  match
                    Scanf.sscanf_opt line "segment %s shard %d range %d %d runs %d%!"
                      (fun f sh a b r ->
                        { m_file = f; m_cover = [ (sh, a, b) ]; m_runs = r; m_merged = false })
                  with
                  | Some seg -> man := { !man with man_segs = seg :: !man.man_segs }
                  | None ->
                      man := { !man with man_segs = parse_merged lineno line :: !man.man_segs }))
        rest;
      { !man with man_consumed = List.rev !man.man_consumed; man_segs = List.rev !man.man_segs })

let read_file ?io path = Sbi_fault.Io.read_file ?io path

let write_file_atomic ?io path content = Sbi_fault.Io.write_file_atomic ?io path content

let file_size path = try Sbi_fault.Io.file_size path with Unix.Unix_error _ | Sys_error _ -> 0

let load_manifest dir =
  let path = manifest_file dir in
  if not (Sys.file_exists path) then raise (Format_error (path ^ ": missing manifest"));
  parse_manifest path (read_file path)

let load_meta dir =
  try Shard_log.read_meta ~dir
  with Shard_log.Format_error m -> raise (Format_error m)

let tables_match (a : Dataset.t) (b : Dataset.t) =
  a.Dataset.nsites = b.Dataset.nsites
  && a.Dataset.npreds = b.Dataset.npreds
  && a.Dataset.pred_site = b.Dataset.pred_site

(* --- building --- *)

(* Offset of the first record in a shard file, or None for a header torn
   by a killed writer (an empty crashed shard: nothing to index yet, and
   nothing was ever acknowledged from it). *)
let shard_header_end path s =
  match Shard_log.parse_header s with
  | Ok (_, off) -> Some off
  | Error `Torn_header -> None
  | Error (`Bad m) -> raise (Format_error (path ^ ": " ^ m))

(* Scan framed records in [s] from [start]: intact reports, corrupt count,
   and the clean resume offset (start of any truncated tail, else EOF). *)
let scan_range s ~start =
  let n = String.length s in
  let reports = ref [] in
  let corrupt = ref 0 in
  let pos = ref start in
  let continue = ref true in
  while !continue && !pos < n do
    match Codec.read_framed s ~pos:!pos with
    | Codec.Frame (r, next) ->
        reports := r :: !reports;
        pos := next
    | Codec.Frame_corrupt next ->
        incr corrupt;
        pos := next
    | Codec.Frame_truncated -> continue := false
  done;
  (Array.of_list (List.rev !reports), !corrupt, !pos)

(* Ids already used by the manifest OR present as files (an orphan left by
   a killed build/compaction must not be silently overwritten — repair
   owns deleting it). *)
let next_seg_id ~dir man =
  let from_man =
    List.fold_left
      (fun acc s -> match seg_file_id s.m_file with Some i -> max acc (i + 1) | None -> acc)
      0 man.man_segs
  in
  let from_dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> 0
    | names ->
        Array.fold_left
          (fun acc name ->
            match seg_file_id name with Some i -> max acc (i + 1) | None -> acc)
          0 names
  in
  max from_man from_dir

let build_impl ?io ~log ~dir () =
  let log_meta =
    try Shard_log.read_meta ~dir:log
    with Shard_log.Format_error m -> raise (Format_error m)
  in
  let man =
    if Sys.file_exists (manifest_file dir) then begin
      let meta = load_meta dir in
      if not (tables_match meta log_meta) then
        raise
          (Format_error
             (Printf.sprintf "%s: site/predicate tables do not match log %s" dir log));
      load_manifest dir
    end
    else begin
      (* fresh index: establish the directory and tables *)
      Shard_log.write_meta ?io ~dir log_meta;
      empty_manifest
    end
  in
  let next_id = ref (next_seg_id ~dir man) in
  let consumed = ref man.man_consumed in
  let new_segs = ref [] in
  let stats = ref { segments_added = 0; records_indexed = 0; corrupt_skipped = 0; bytes_consumed = 0 } in
  List.iter
    (fun (shard, path) ->
      let s = read_file path in
      let n = String.length s in
      let already = match List.assoc_opt shard !consumed with Some b -> b | None -> 0 in
      let start =
        if already = 0 then match shard_header_end path s with Some off -> off | None -> n
        else already
      in
      if start < n then begin
        let reports, corrupt, stop = scan_range s ~start in
        (if Array.length reports > 0 then begin
           let seg =
             Segment.of_reports ~nsites:log_meta.Dataset.nsites ~npreds:log_meta.Dataset.npreds
               ~source_shard:shard ~start_off:start ~end_off:stop reports
           in
           let file = seg_file_name !next_id in
           incr next_id;
           write_file_atomic ?io (Filename.concat dir file) (Segment.encode seg);
           new_segs :=
             { m_file = file; m_cover = [ (shard, start, stop) ]; m_runs = seg.Segment.nruns;
               m_merged = false }
             :: !new_segs;
           stats :=
             { !stats with
               segments_added = !stats.segments_added + 1;
               records_indexed = !stats.records_indexed + Array.length reports }
         end);
        stats :=
          { !stats with
            corrupt_skipped = !stats.corrupt_skipped + corrupt;
            bytes_consumed = !stats.bytes_consumed + (stop - start) };
        consumed := (shard, stop) :: List.remove_assoc shard !consumed
      end)
    (Shard_log.shard_files ~dir:log);
  let man =
    {
      man_log = Some log;
      man_consumed = !consumed;
      man_segs = man.man_segs @ List.rev !new_segs;
    }
  in
  write_file_atomic ?io (manifest_file dir) (render_manifest man);
  !stats

let build ?io ~log ~dir () =
  Sbi_obs.Trace.with_span ~name:"index.build" ~args:log (fun () -> build_impl ?io ~log ~dir ())

(* --- opening --- *)

let empty_tail meta =
  {
    t_reports = [||];
    t_len = 0;
    t_agg = Aggregator.of_meta meta;
    t_cache = None;
  }

(* Lazy-first open: a v2 segment contributes its footer (a few hundred
   bytes) and a footer-derived aggregate — postings stay on disk until a
   query touches them.  v1 files and anything the footer path rejects
   fall back to a full verifying decode, preserving the old behavior. *)
(* Cache knob: SBI_CACHE_BUDGET (heap words) bounds the posting cache;
   unset -> Segref's default (2^22 words, ~32 MB). *)
let cache_budget () =
  Option.bind (Sys.getenv_opt "SBI_CACHE_BUDGET") int_of_string_opt

let open_body pool ~dir =
  let meta = load_meta dir in
  let man = load_manifest dir in
  let cache = Segref.create_cache ?budget:(cache_budget ()) () in
  let load m =
    let path = Filename.concat dir m.m_file in
    if not (Sys.file_exists path) then Error "missing file"
    else
      match Segment.read_footer path with
      | Some ft ->
          if
            ft.Segment.ft_nsites <> meta.Dataset.nsites
            || ft.Segment.ft_npreds <> meta.Dataset.npreds
          then Error "table size mismatch"
          else if ft.Segment.ft_nruns <> m.m_runs then Error "run count disagrees with manifest"
          else (
            match Segment.footer_aggregator ~pred_site:meta.Dataset.pred_site ft with
            | agg -> Ok (Segref.of_disk ~cache ~path ~file:m.m_file ft, agg, ft.Segment.ft_nruns)
            | exception Segment.Corrupt msg -> Error msg)
      | None -> (
          (* legacy v1 file: eager decode, as before *)
          match Segment.decode (read_file path) with
          | seg ->
              if seg.Segment.nsites <> meta.Dataset.nsites
                 || seg.Segment.npreds <> meta.Dataset.npreds
              then Error "table size mismatch"
              else
                Ok
                  ( Segref.of_segment ~file:m.m_file seg,
                    Segment.aggregator ~pred_site:meta.Dataset.pred_site seg,
                    seg.Segment.nruns )
          | exception Segment.Corrupt msg -> Error msg)
      | exception Segment.Corrupt msg -> Error msg
  in
  let entries = Array.of_list man.man_segs in
  let results =
    match pool with
    | Some pool -> Sbi_par.Domain_pool.map_array pool load entries
    | None -> Array.map load entries
  in
  let segs = ref [] in
  let aggs = ref [] in
  let loaded = ref 0 and corrupt = ref 0 and records = ref 0 in
  Array.iter
    (function
      | Ok (sr, agg, nruns) ->
          segs := sr :: !segs;
          aggs := agg :: !aggs;
          incr loaded;
          records := !records + nruns
      | Error _ -> incr corrupt)
    results;
  {
    dir;
    meta;
    log_dir = man.man_log;
    segments = Array.of_list (List.rev !segs);
    seg_aggs = Array.of_list (List.rev !aggs);
    cache;
    stats = { segments_loaded = !loaded; segments_corrupt = !corrupt; records_loaded = !records };
    tail = empty_tail meta;
    epoch = 0;
    snap = None;
  }

let open_impl pool ~dir =
  Sbi_obs.Trace.with_span ~name:"index.open" ~args:dir (fun () -> open_body pool ~dir)

let open_ ~dir = open_impl None ~dir
let open_par ~pool ~dir = open_impl (Some pool) ~dir

let cache_stats t = Sbi_store.Lru.stats t.cache

(* --- live tail --- *)

let validate_report meta (r : Report.t) =
  if r.Report.run_id < 0 then invalid_arg "Index.append: negative run id";
  Array.iter
    (fun site ->
      if site < 0 || site >= meta.Dataset.nsites then
        invalid_arg (Printf.sprintf "Index.append: site %d out of range" site))
    r.Report.observed_sites;
  Array.iter
    (fun pred ->
      if pred < 0 || pred >= meta.Dataset.npreds then
        invalid_arg (Printf.sprintf "Index.append: predicate %d out of range" pred))
    r.Report.true_preds

let validate t r = validate_report t.meta r

let append t r =
  validate_report t.meta r;
  let tail = t.tail in
  if tail.t_len = Array.length tail.t_reports then begin
    let cap = max 16 (2 * Array.length tail.t_reports) in
    let grown = Array.make cap r in
    Array.blit tail.t_reports 0 grown 0 tail.t_len;
    tail.t_reports <- grown
  end;
  tail.t_reports.(tail.t_len) <- r;
  tail.t_len <- tail.t_len + 1;
  Aggregator.observe tail.t_agg r;
  tail.t_cache <- None;
  (* the write side of the epoch protocol: any snapshot built before this
     append is now stale (readers still holding it stay consistent) *)
  t.epoch <- t.epoch + 1

let tail_count t = t.tail.t_len
let tail_reports t = Array.sub t.tail.t_reports 0 t.tail.t_len

let tail_segment t =
  if t.tail.t_len = 0 then None
  else
    match t.tail.t_cache with
    | Some seg -> Some seg
    | None ->
        let seg =
          Segment.of_reports ~nsites:t.meta.Dataset.nsites ~npreds:t.meta.Dataset.npreds
            ~source_shard:(-1) ~start_off:0 ~end_off:0
            (Array.sub t.tail.t_reports 0 t.tail.t_len)
        in
        t.tail.t_cache <- Some seg;
        Some seg

let tail_aggregator t = t.tail.t_agg
let epoch t = t.epoch

(* --- epoch-versioned snapshot --- *)

let merged_counts t =
  let acc = Aggregator.of_meta t.meta in
  Array.iter (fun a -> Aggregator.merge_into ~into:acc a) t.seg_aggs;
  Aggregator.merge_into ~into:acc t.tail.t_agg;
  Aggregator.to_counts acc

let all_segrefs t =
  match tail_segment t with
  | Some tail -> Array.append t.segments [| Segref.of_segment ~file:"<tail>" tail |]
  | None -> t.segments

let snapshot ?pool t =
  match t.snap with
  | Some s when Snapshot.epoch s = t.epoch -> s
  | _ ->
      (* only the rebuild branch is a span: cache hits are the common
         case and must stay free of instrumentation *)
      let s =
        Sbi_obs.Trace.with_span ~name:"index.snapshot"
          ~args:(Printf.sprintf "epoch=%d" t.epoch) (fun () ->
            Snapshot.build ?pool ~epoch:t.epoch ~meta:t.meta ~counts:(merged_counts t)
              (all_segrefs t))
      in
      t.snap <- Some s;
      s

let nruns t = Array.fold_left (fun acc sr -> acc + Segref.nruns sr) t.tail.t_len t.segments

let num_failures t =
  Array.fold_left
    (fun acc sr -> acc + Segref.num_f sr)
    t.tail.t_agg.Aggregator.num_f t.segments

(* --- compaction --- *)

type compact_stats = {
  cp_rounds : int;
  cp_merged : int;  (* input segments merged away *)
  cp_written : int;  (* merged segments written *)
  cp_segments_before : int;
  cp_segments_after : int;
  cp_bytes_before : int;
  cp_bytes_after : int;
  cp_reclaimed : string list;  (* obsolete segment files (deleted unless remove_old:false) *)
}

type compact_plan = {
  pl_tiers : (int * int * int * int) list;  (* tier, segments, runs, bytes *)
  pl_groups : (int * string list) list;  (* tier -> files that would merge *)
}

let tier_segs ~dir man =
  List.mapi
    (fun i m ->
      { Tier.ts_index = i; ts_runs = m.m_runs; ts_bytes = file_size (Filename.concat dir m.m_file) })
    man.man_segs

let compact_plan ?tier_max ~dir () =
  let man = load_manifest dir in
  let tsegs = tier_segs ~dir man in
  let entries = Array.of_list man.man_segs in
  {
    pl_tiers = Tier.describe tsegs;
    pl_groups =
      List.map
        (fun (tier, idxs) -> (tier, List.map (fun i -> entries.(i).m_file) idxs))
        (Tier.plan ?tier_max tsegs);
  }

(* Coalesce adjacent cover ranges of one shard so repeated compaction
   keeps cover lists short (leaf ranges of a shard are contiguous). *)
let rec coalesce_cover = function
  | (s1, a1, b1) :: (s2, a2, b2) :: rest when s1 = s2 && a2 = b1 ->
      coalesce_cover ((s1, a1, b2) :: rest)
  | x :: rest -> x :: coalesce_cover rest
  | [] -> []

(* One compaction pass: while any tier is overfull, merge ALL members of
   each overfull tier into one segment, then rewrite the manifest
   atomically.  Obsolete inputs are deleted only after the last manifest
   write — a kill at any point leaves either the old manifest plus an
   orphan merged file, or the new manifest plus orphan inputs; both are
   cleaned by {!repair} and harmless to {!open_} (which reads only
   manifest-listed files).  [remove_old:false] skips the deletions so a
   live server can drain readers off the old files first. *)
let compact_impl ?io ?tier_max ?(remove_old = true) ~dir () =
  let meta = load_meta dir in
  let man0 = load_manifest dir in
  let bytes_of m = List.fold_left (fun a s -> a + file_size (Filename.concat dir s.m_file)) 0 m.man_segs in
  let segments_before = List.length man0.man_segs in
  let bytes_before = bytes_of man0 in
  let man = ref man0 in
  let next_id = ref (next_seg_id ~dir man0) in
  let rounds = ref 0 and merged_away = ref 0 and written = ref 0 in
  let obsolete = ref [] in
  let continue = ref true in
  (* 8 rounds bounds any cascade: a merge can promote at most one tier
     per round, and real indexes have single-digit tiers *)
  while !continue && !rounds < 8 do
    match Tier.plan ?tier_max (tier_segs ~dir !man) with
    | [] -> continue := false
    | groups ->
        incr rounds;
        let entries = Array.of_list !man.man_segs in
        let replacement = Hashtbl.create 8 in
        (* entry index -> `New merged entry | `Gone *)
        List.iter
          (fun (_tier, idxs) ->
            let members = List.map (fun i -> entries.(i)) idxs in
            let member_arr = Array.of_list members in
            (* members are decoded on demand (twice, by concat_n's two
               passes) so a merge never holds more than one input's
               postings on top of the output *)
            let load i =
              let path = Filename.concat dir member_arr.(i).m_file in
              try Segment.decode (read_file path)
              with Segment.Corrupt msg ->
                raise (Format_error (path ^ ": " ^ msg ^ " (run repair before compact)"))
            in
            let merged = Segment.concat_n ~load (Array.length member_arr) in
            let file = seg_file_name !next_id in
            incr next_id;
            write_file_atomic ?io (Filename.concat dir file) (Segment.encode merged);
            incr written;
            merged_away := !merged_away + List.length members;
            obsolete := List.rev_append (List.map (fun m -> m.m_file) members) !obsolete;
            let entry =
              {
                m_file = file;
                m_cover = coalesce_cover (List.concat_map (fun m -> m.m_cover) members);
                m_runs = merged.Segment.nruns;
                m_merged = true;
              }
            in
            (match idxs with
            | first :: rest ->
                Hashtbl.replace replacement first (`New entry);
                List.iter (fun i -> Hashtbl.replace replacement i `Gone) rest
            | [] -> ()))
          groups;
        let segs' =
          List.concat
            (List.mapi
               (fun i m ->
                 match Hashtbl.find_opt replacement i with
                 | Some (`New e) -> [ e ]
                 | Some `Gone -> []
                 | None -> [ m ])
               !man.man_segs)
        in
        man := { !man with man_segs = segs' };
        write_file_atomic ?io (manifest_file dir) (render_manifest !man)
  done;
  ignore meta;
  let reclaimed = List.rev !obsolete in
  if remove_old then
    List.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      reclaimed;
  {
    cp_rounds = !rounds;
    cp_merged = !merged_away;
    cp_written = !written;
    cp_segments_before = segments_before;
    cp_segments_after = List.length !man.man_segs;
    cp_bytes_before = bytes_before;
    cp_bytes_after = bytes_of !man;
    cp_reclaimed = reclaimed;
  }

let compact ?io ?tier_max ?remove_old ~dir () =
  Sbi_obs.Trace.with_span ~name:"index.compact" ~args:dir (fun () ->
      compact_impl ?io ?tier_max ?remove_old ~dir ())

let pp_compact st =
  Printf.sprintf
    "%d round(s): %d segment(s) -> %d, %d merged into %d new, %d -> %d bytes\n"
    st.cp_rounds st.cp_segments_before st.cp_segments_after st.cp_merged st.cp_written
    st.cp_bytes_before st.cp_bytes_after

let pp_plan pl =
  let buf = Buffer.create 256 in
  List.iter
    (fun (tier, nsegs, runs, bytes) ->
      Buffer.add_string buf
        (Printf.sprintf "  tier %d: %d segment(s), %d runs, %d bytes\n" tier nsegs runs bytes))
    pl.pl_tiers;
  if pl.pl_groups = [] then Buffer.add_string buf "nothing to compact\n"
  else
    List.iter
      (fun (tier, files) ->
        Buffer.add_string buf
          (Printf.sprintf "would merge %d segment(s) of tier %d: %s\n" (List.length files)
             tier (String.concat " " files)))
      pl.pl_groups;
  Buffer.contents buf

(* --- fsck --- *)

type fsck_seg = {
  seg_file : string;
  seg_ok : bool;
  seg_runs : int;
  seg_tier : int;
  seg_bytes : int;
  seg_error : string option;
}

type fsck_report = {
  fsck_segments : fsck_seg list;
  fsck_ok : int;
  fsck_corrupt : int;
  fsck_records : int;
  fsck_tiers : (int * int * int * int) list;  (* tier, segments, runs, bytes *)
  fsck_dead_files : string list;  (* unreferenced segment files + .tmp strays *)
  fsck_dead_bytes : int;
  fsck_live_bytes : int;
}

let fsck ~dir =
  let meta = load_meta dir in
  let man = load_manifest dir in
  let check m =
    let path = Filename.concat dir m.m_file in
    if not (Sys.file_exists path) then Error "missing file"
    else
      match Segment.decode (read_file path) with
      | exception Segment.Corrupt msg -> Error msg
      | seg ->
          if seg.Segment.nsites <> meta.Dataset.nsites || seg.Segment.npreds <> meta.Dataset.npreds
          then Error "table size mismatch with meta"
          else if seg.Segment.nruns <> m.m_runs then
            Error
              (Printf.sprintf "run count %d disagrees with manifest (%d)" seg.Segment.nruns
                 m.m_runs)
          else if
            (not m.m_merged)
            && (match m.m_cover with
               | [ (shard, _, _) ] -> seg.Segment.source_shard <> shard
               | _ -> true)
          then Error "source shard disagrees with manifest"
          else (
            (* v2: exercise the lazy-open path too, so a footer-only
               corruption (the path open_ actually takes) is surfaced *)
            match Segment.read_footer path with
            | Some ft ->
                if ft.Segment.ft_nruns <> seg.Segment.nruns then
                  Error "footer run count disagrees with body"
                else Ok seg
            | None -> Ok seg
            | exception Segment.Corrupt msg -> Error ("footer: " ^ msg))
  in
  let segs =
    List.map
      (fun m ->
        let bytes = file_size (Filename.concat dir m.m_file) in
        match check m with
        | Ok seg ->
            {
              seg_file = m.m_file;
              seg_ok = true;
              seg_runs = seg.Segment.nruns;
              seg_tier = Tier.tier_of seg.Segment.nruns;
              seg_bytes = bytes;
              seg_error = None;
            }
        | Error msg ->
            {
              seg_file = m.m_file;
              seg_ok = false;
              seg_runs = 0;
              seg_tier = 0;
              seg_bytes = bytes;
              seg_error = Some msg;
            })
      man.man_segs
  in
  let ok_segs = List.filter (fun s -> s.seg_ok) segs in
  let listed = List.map (fun m -> m.m_file) man.man_segs in
  let dead =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | names ->
        Array.to_list names
        |> List.filter (fun name ->
               (seg_file_id name <> None && not (List.mem name listed))
               || Filename.check_suffix name ".tmp")
        |> List.sort String.compare
  in
  {
    fsck_segments = segs;
    fsck_ok = List.length ok_segs;
    fsck_corrupt = List.length segs - List.length ok_segs;
    fsck_records = List.fold_left (fun acc s -> acc + s.seg_runs) 0 segs;
    fsck_tiers =
      Tier.describe
        (List.map
           (fun s -> { Tier.ts_index = 0; ts_runs = s.seg_runs; ts_bytes = s.seg_bytes })
           ok_segs);
    fsck_dead_files = dead;
    fsck_dead_bytes = List.fold_left (fun acc f -> acc + file_size (Filename.concat dir f)) 0 dead;
    fsck_live_bytes = List.fold_left (fun acc s -> acc + s.seg_bytes) 0 ok_segs;
  }

(* --- repair --- *)

type repair_report = {
  rep_dropped : string list;
  rep_removed : string list;
  rep_rollbacks : (int * int * int) list;
}

(* A damaged segment invalidates everything indexed after it from the same
   source shard(s): the consumed offset only records the high-water mark,
   so the sole way to re-index the lost byte ranges is to roll each
   covered shard's offset back to the damaged segment's earliest cover
   start and drop every segment whose cover extends past a rollback point
   (their ranges would otherwise overlap the re-indexed bytes and
   double-count runs).  Dropping such a segment can poison further shards
   (merged segments cover several), so the drop set is closed under a
   fixpoint.  The next {!build} then re-consumes from the rollback
   points.  For an all-leaf manifest this reduces to the pre-tiering
   behavior: first bad segment of a shard plus all its later segments. *)
let repair ~dir =
  let clean_strays removed =
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".tmp" then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          removed := name :: !removed
        end)
      (Sys.readdir dir)
  in
  if not (Sys.file_exists (Filename.concat dir Shard_log.meta_file)) then begin
    (* killed before the tables ever hit disk: nothing in the directory is
       trustworthy, so reset it to the fresh state the next build expects *)
    let removed = ref [] in
    let dropped = ref [] in
    Array.iter
      (fun name ->
        let is_seg = seg_file_id name <> None in
        if is_seg || name = "manifest" then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          removed := name :: !removed;
          if is_seg then dropped := name :: !dropped
        end)
      (Sys.readdir dir);
    clean_strays removed;
    {
      rep_dropped = List.rev !dropped;
      rep_removed = List.sort_uniq String.compare !removed;
      rep_rollbacks = [];
    }
  end
  else begin
    let meta = load_meta dir in
    let man =
      (* killed between meta and the first manifest write: an empty manifest
         makes the next build re-index from scratch *)
      if Sys.file_exists (manifest_file dir) then load_manifest dir else empty_manifest
    in
    let seg_bad m =
      let path = Filename.concat dir m.m_file in
      if not (Sys.file_exists path) then true
      else
        match Segment.decode (read_file path) with
        | exception Segment.Corrupt _ -> true
        | seg ->
            seg.Segment.nsites <> meta.Dataset.nsites
            || seg.Segment.npreds <> meta.Dataset.npreds
            || seg.Segment.nruns <> m.m_runs
            || ((not m.m_merged)
               &&
               match m.m_cover with
               | [ (shard, _, _) ] -> seg.Segment.source_shard <> shard
               | _ -> true)
    in
    let entries = Array.of_list man.man_segs in
    let kept = Array.map (fun m -> not (seg_bad m)) entries in
    let poisoned = Hashtbl.create 8 in
    (* shard -> rollback offset (monotonically decreasing) *)
    let poison (shard, start, _stop) =
      match Hashtbl.find_opt poisoned shard with
      | Some cur when cur <= start -> ()
      | _ -> Hashtbl.replace poisoned shard start
    in
    Array.iteri (fun i m -> if not kept.(i) then List.iter poison m.m_cover) entries;
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun i m ->
          if
            kept.(i)
            && List.exists
                 (fun (shard, _start, stop) ->
                   match Hashtbl.find_opt poisoned shard with
                   | Some off -> stop > off
                   | None -> false)
                 m.m_cover
          then begin
            kept.(i) <- false;
            List.iter poison m.m_cover;
            changed := true
          end)
        entries
    done;
    let keep = ref [] and dropped = ref [] in
    Array.iteri
      (fun i m -> if kept.(i) then keep := m :: !keep else dropped := m :: !dropped)
      entries;
    let keep = List.rev !keep and dropped = List.rev !dropped in
    let rollbacks = ref [] in
    let consumed =
      List.map
        (fun (shard, bytes) ->
          match Hashtbl.find_opt poisoned shard with
          | Some back when back < bytes ->
              rollbacks := (shard, bytes, back) :: !rollbacks;
              (shard, back)
          | _ -> (shard, bytes))
        man.man_consumed
    in
    let kept_files = List.map (fun m -> m.m_file) keep in
    let removed = ref [] in
    let remove_file name =
      let path = Filename.concat dir name in
      if Sys.file_exists path then begin
        (try Sys.remove path with Sys_error _ -> ());
        removed := name :: !removed
      end
    in
    (* dropped segments, orphan segment files a crashed build/compaction
       left unlisted, and stray temp files from killed atomic writes *)
    List.iter (fun m -> remove_file m.m_file) dropped;
    Array.iter
      (fun name ->
        let is_seg = seg_file_id name <> None in
        let is_tmp = Filename.check_suffix name ".tmp" in
        if (is_seg && not (List.mem name kept_files)) || is_tmp then remove_file name)
      (Sys.readdir dir);
    let man = { man with man_consumed = consumed; man_segs = keep } in
    write_file_atomic (manifest_file dir) (render_manifest man);
    {
      rep_dropped = List.map (fun m -> m.m_file) dropped;
      rep_removed = List.sort_uniq String.compare !removed;
      rep_rollbacks = List.rev !rollbacks;
    }
  end

let pp_repair r =
  let buf = Buffer.create 256 in
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "  dropped %s\n" f))
    r.rep_dropped;
  List.iter
    (fun f ->
      if not (List.mem f r.rep_dropped) then
        Buffer.add_string buf (Printf.sprintf "  removed stray %s\n" f))
    r.rep_removed;
  List.iter
    (fun (shard, from_, to_) ->
      Buffer.add_string buf
        (Printf.sprintf "  shard %d rolled back %d -> %d\n" shard from_ to_))
    r.rep_rollbacks;
  Buffer.add_string buf
    (Printf.sprintf "%d segment(s) dropped, %d file(s) removed, %d shard(s) rolled back\n"
       (List.length r.rep_dropped) (List.length r.rep_removed)
       (List.length r.rep_rollbacks));
  Buffer.contents buf

let pp_fsck r =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      match s.seg_error with
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "  %s: ok, %d runs, tier %d, %d bytes\n" s.seg_file s.seg_runs
               s.seg_tier s.seg_bytes)
      | Some e -> Buffer.add_string buf (Printf.sprintf "  %s: CORRUPT (%s)\n" s.seg_file e))
    r.fsck_segments;
  List.iter
    (fun (tier, nsegs, runs, bytes) ->
      Buffer.add_string buf
        (Printf.sprintf "  tier %d: %d segment(s), %d runs, %d bytes\n" tier nsegs runs bytes))
    r.fsck_tiers;
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "  dead file %s\n" f))
    r.fsck_dead_files;
  Buffer.add_string buf
    (Printf.sprintf "%d segment(s): %d ok, %d corrupt, %d runs indexed, %d live bytes, %d dead bytes\n"
       (List.length r.fsck_segments) r.fsck_ok r.fsck_corrupt r.fsck_records r.fsck_live_bytes
       r.fsck_dead_bytes);
  Buffer.contents buf
