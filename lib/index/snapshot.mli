(** An immutable, epoch-stamped view of an index: the read side of the
    analysis engine.

    A snapshot carries the merged §3.1 aggregate plus one lazy {!view}
    per segment reference, so every read-only query — top-k, predicate
    detail, affinity, the full elimination loop — runs on popcount
    kernels against the snapshot without touching the live index.
    Views hand out compressed {!Sbi_store.Rbitmap} posting bitmaps on
    demand ({!Segref} materializes them through its LRU cache), so
    opening a snapshot of a million-run index allocates almost nothing
    until a kernel actually needs a posting.  Writers (ingest) bump the
    owning index's epoch; a snapshot whose [epoch] no longer matches is
    simply stale, never wrong, and readers holding it keep computing on
    a consistent corpus while the next snapshot is built — readers
    never block ingest, ingest never blocks readers. *)

type view = {
  v_nruns : int;
  v_failing : unit -> Bitset.t;
      (** outcome bitmap, shared/memoized — copy before mutating *)
  v_pred_bits : int -> Sbi_store.Rbitmap.t;  (** per-predicate run bitmaps *)
  v_site_bits : int -> Sbi_store.Rbitmap.t;  (** per-site observed bitmaps *)
}

type t = {
  epoch : int;
  meta : Sbi_runtime.Dataset.t;
  views : view array;  (** on-disk segments, then the live tail (if any) *)
  counts : Sbi_core.Counts.t;  (** merged aggregate over all views *)
}

val build :
  ?pool:Sbi_par.Domain_pool.t ->
  epoch:int ->
  meta:Sbi_runtime.Dataset.t ->
  counts:Sbi_core.Counts.t ->
  Segref.t array ->
  t
(** Wrap [segrefs] in lazy views.  [counts] must be the merged aggregate
    of exactly those segments.  [pool] is accepted for API stability;
    there is no eager densification left to fan out. *)

val epoch : t -> int
val counts : t -> Sbi_core.Counts.t
val nruns : t -> int
val num_failures : t -> int
