(** An immutable, epoch-stamped bitmap view of an index: the read side of
    the analysis engine.

    A snapshot densifies every per-segment posting list into a run
    bitmap ({!view}) and carries the merged §3.1 aggregate, so every
    read-only query — top-k, predicate detail, affinity, the full
    elimination loop — runs on word-level {!Bitset} popcount kernels
    against the snapshot without touching the live index.  Writers
    (ingest) bump the owning index's epoch; a snapshot whose [epoch] no
    longer matches is simply stale, never wrong, and readers holding it
    keep computing on a consistent corpus while the next snapshot is
    built — readers never block ingest, ingest never blocks readers.

    Everything inside a snapshot is write-once at {!build} time and read
    from many domains afterwards; publication happens through the lock
    or pool handoff that delivers the snapshot to each reader. *)

type view = {
  v_nruns : int;
  v_failing : Bitset.t;  (** outcome bitmap, shared with the segment *)
  v_pred_bits : Bitset.t array;  (** per-predicate run-membership bitmaps *)
  v_site_bits : Bitset.t array;  (** per-site observed-run bitmaps *)
}

type t = {
  epoch : int;
  meta : Sbi_runtime.Dataset.t;
  views : view array;  (** on-disk segments, then the live tail (if any) *)
  counts : Sbi_core.Counts.t;  (** merged aggregate over all views *)
}

val build :
  ?pool:Sbi_par.Domain_pool.t ->
  epoch:int ->
  meta:Sbi_runtime.Dataset.t ->
  counts:Sbi_core.Counts.t ->
  Segment.t array ->
  t
(** Densify [segments] (posting lists → bitmaps), fanned across [pool]
    when given.  [counts] must be the merged aggregate of exactly those
    segments. *)

val epoch : t -> int
val counts : t -> Sbi_core.Counts.t
val nruns : t -> int
val num_failures : t -> int
