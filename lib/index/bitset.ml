include Sbi_store.Bitset
