type t = { words : int array; len : int }

let bits_per_word = Sys.int_size
let nwords len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { words = Array.make (max 1 (nwords len)) 0; len }

let full len =
  let t = create len in
  for i = 0 to len - 1 do
    let w = i / bits_per_word and b = i mod bits_per_word in
    t.words.(w) <- t.words.(w) lor (1 lsl b)
  done;
  t

let copy t = { words = Array.copy t.words; len = t.len }
let length t = t.len

let check t i = if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let count_and a b =
  if a.len <> b.len then invalid_arg "Bitset.count_and: length mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let of_positions len ps =
  let t = create len in
  Array.iter (fun p -> set t p) ps;
  t
