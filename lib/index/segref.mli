(** Uniform segment handle for the read path: an in-memory {!Segment.t}
    (live tail, legacy v1 files) or a lazily loaded v2 segment opened
    from its footer.

    Disk-backed postings materialize on first touch as compressed
    {!Sbi_store.Rbitmap}s through a shared LRU {!cache}, so an index far
    larger than RAM serves triage queries in bounded memory; in-memory
    segments memoize their conversions per reference.  All accessors are
    safe to call from multiple domains: memoization races are benign
    (immutable values, atomic pointer stores, last writer wins). *)

type cache = (string * bool * int, Sbi_store.Rbitmap.t) Sbi_store.Lru.t
(** Keyed by (segment path, is-predicate, posting id). *)

val create_cache : ?budget:int -> unit -> cache
(** [budget] in heap words ({!Sbi_store.Rbitmap.memory_words}); default
    [2^22] (~32 MB). *)

type t

val of_segment : file:string -> Segment.t -> t
val of_disk : ?io:Sbi_fault.Io.t -> cache:cache -> path:string -> file:string -> Segment.footer -> t

val file : t -> string
val nruns : t -> int
val num_f : t -> int

val failing : t -> Bitset.t
(** The outcome bitmap, shared/memoized — callers must copy before
    mutating (the elimination loop does). *)

val pred_bits : t -> int -> Sbi_store.Rbitmap.t
val site_bits : t -> int -> Sbi_store.Rbitmap.t

val pred_posting : t -> int -> int array
(** Sorted positions observing the predicate true — co-occurrence's
    input.  Disk segments answer from the posting cache. *)

val aggregator : pred_site:int array -> t -> Sbi_ingest.Aggregator.t
(** The segment's §3.1 partial aggregate; footer statistics alone for
    disk segments (no posting reads).
    @raise Segment.Corrupt on inconsistent footer counters. *)
