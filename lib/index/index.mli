(** On-disk inverted predicate index over a {!Sbi_ingest.Shard_log}
    directory, with incremental updates and a crash-tolerant loader.

    An index is a directory:
    {v
    idx/
      meta             site/predicate tables (zero-run dataset, same
                       format as the shard log's meta file)
      manifest         versioned text manifest: source log path, per-
                       source-shard consumed byte offsets, segment list
      seg-0000.sbix    immutable {!Segment} files (CRC-trailed)
      ...
    v}

    {!build} is incremental: per source shard it remembers how many bytes
    have been indexed and compiles only the unseen suffix into a new
    segment, so re-running it after `cbi ingest` appends (or after a
    server session wrote a new shard) indexes just the new records.
    Corrupt source records are skipped exactly as the shard-log reader
    skips them; a corrupt {e segment} file is skipped (and counted) by
    {!open_} and reported by {!fsck}. *)

exception Format_error of string
(** Unusable index: missing/invalid meta or manifest, or a source log
    whose tables disagree with the index's. *)

type build_stats = {
  segments_added : int;
  records_indexed : int;  (** intact source records newly indexed *)
  corrupt_skipped : int;  (** source records skipped on CRC/decode failure *)
  bytes_consumed : int;  (** new source bytes consumed by this build *)
}

type open_stats = {
  segments_loaded : int;
  segments_corrupt : int;  (** segment files skipped (bad CRC / decode) *)
  records_loaded : int;
}

type t = {
  dir : string;
  meta : Sbi_runtime.Dataset.t;  (** site/predicate tables (zero runs) *)
  log_dir : string option;  (** source log recorded in the manifest *)
  segments : Segment.t array;
  seg_aggs : Sbi_ingest.Aggregator.t array;  (** parallel per-segment partial aggregates *)
  stats : open_stats;
  tail : tail;
  mutable epoch : int;  (** bumped by every accepted {!append} *)
  mutable snap : Snapshot.t option;  (** {!snapshot} cache; see below *)
}

(** Live, unindexed reports accepted since {!open_} (the serving path's
    ingest buffer).  Folded into every query; durably persisted by the
    caller (the server appends to the source log, and the next {!build}
    picks them up). *)
and tail

val build : ?io:Sbi_fault.Io.t -> log:string -> dir:string -> unit -> build_stats
(** Create [dir] as an index of [log], or incrementally extend an
    existing index with the log's unseen bytes.  The manifest is
    rewritten atomically (temp + rename) after all new segments are on
    disk.  [?io] routes meta, segment, and manifest writes through the
    fault injector (passthrough by default).  @raise Format_error on an
    unreadable log or manifest, or when [log]'s tables don't match the
    existing index. *)

val open_ : dir:string -> t
(** Load an index: meta, manifest, and every decodable segment (corrupt
    segments are skipped and counted in [stats]).
    @raise Format_error when meta or manifest is missing/invalid. *)

val open_par : pool:Sbi_par.Domain_pool.t -> dir:string -> t
(** {!open_} with segment decoding and per-segment aggregation fanned
    across [pool] — the index-open/refresh path scales with cores.
    Produces a state identical to {!open_} (segments stay in manifest
    order regardless of completion order). *)

val validate : t -> Sbi_runtime.Report.t -> unit
(** @raise Invalid_argument when the report refers to sites/predicates
    outside the tables.  Lets callers reject a report {e before} any
    state (durable log, live tail) is touched. *)

val append : t -> Sbi_runtime.Report.t -> unit
(** Fold one live report into the in-memory tail.  @raise Invalid_argument
    when the report refers to sites/predicates outside the tables. *)

val tail_count : t -> int
val tail_segment : t -> Segment.t option
(** The tail as an inverted segment (rebuilt lazily, cached between
    appends); [None] when no live reports exist. *)

val tail_aggregator : t -> Sbi_ingest.Aggregator.t

val all_segments : t -> Segment.t array
(** On-disk segments followed by the live tail's segment (when any live
    reports exist) — the full current run population, in stable order. *)

val epoch : t -> int
(** Monotone version of the index's run population: starts at 0 on
    {!open_}, incremented by every accepted {!append}. *)

val snapshot : ?pool:Sbi_par.Domain_pool.t -> t -> Snapshot.t
(** The epoch-stamped bitmap {!Snapshot} of the current population,
    cached on the index and invalidated only when {!append} bumps the
    epoch — repeated queries between ingests reuse both the merged
    aggregate and every densified bitmap.  Rebuilds fan across [pool].

    Not linearizable on its own: concurrent callers must serialize
    [snapshot] against [append] (the server takes its write lock for
    both); the returned snapshot itself is immutable and safe to read
    from any number of domains. *)

val nruns : t -> int
val num_failures : t -> int

(** {1 Validation} *)

type fsck_seg = { seg_file : string; seg_ok : bool; seg_runs : int; seg_error : string option }

type fsck_report = {
  fsck_segments : fsck_seg list;  (** in manifest order *)
  fsck_ok : int;
  fsck_corrupt : int;
  fsck_records : int;  (** runs in intact segments *)
}

val fsck : dir:string -> fsck_report
(** Validate every manifest-listed segment (existence, CRC, structure,
    table sizes against meta).  Corrupt segments are reported, not
    fatal — mirroring {!open_}.  @raise Format_error when meta or the
    manifest itself is unusable. *)

val pp_fsck : fsck_report -> string

type repair_report = {
  rep_dropped : string list;  (** manifest-listed segments dropped *)
  rep_removed : string list;  (** files deleted: dropped segments, orphan segments, stray temp files *)
  rep_rollbacks : (int * int * int) list;
      (** (shard, old consumed offset, rolled-back offset) *)
}

val repair : dir:string -> repair_report
(** Restore a damaged index to a state {!fsck} reports clean: drop every
    corrupt/missing/mismatched segment {e plus all later segments of the
    same source shard}, roll the shard's consumed offset back to the
    first dropped segment's start (so the next {!build} re-indexes the
    lost range), delete dropped and orphaned segment files and stray
    [.tmp] files from killed atomic writes, and atomically rewrite the
    manifest.  No intact data is lost: dropped ranges remain in the
    source log.  A directory killed before meta or the manifest ever hit
    disk is reset to the fresh state (the next {!build} re-establishes
    it).  @raise Format_error when an existing meta/manifest is
    syntactically unusable. *)

val pp_repair : repair_report -> string
