(** On-disk inverted predicate index over a {!Sbi_ingest.Shard_log}
    directory, with incremental updates, tiered compaction, and a
    crash-tolerant lazy loader.

    An index is a directory:
    {v
    idx/
      meta             site/predicate tables (zero-run dataset, same
                       format as the shard log's meta file)
      manifest         versioned text manifest: source log path, per-
                       source-shard consumed byte offsets, segment list
                       (leaf entries and compaction-merged entries with
                       their source cover ranges)
      seg-0000.sbix    immutable {!Segment} files (CRC-trailed)
      ...
    v}

    {!build} is incremental: per source shard it remembers how many bytes
    have been indexed and compiles only the unseen suffix into a new
    segment, so re-running it after `cbi ingest` appends (or after a
    server session wrote a new shard) indexes just the new records.
    {!compact} folds the resulting many small segments into few large
    ones under a size-tiered policy ({!Sbi_store.Tier}), keeping read
    fan-in bounded as the corpus grows; merges are pure concatenations,
    so every triage result is bit-identical before and after.

    {!open_} is lazy: v2 segments contribute only their footers (a few
    hundred bytes each) — postings are read on demand through a shared
    LRU cache ({!Segref}), so opening a million-run index costs
    manifest + footer reads, not a full decode.  Corrupt source records
    are skipped exactly as the shard-log reader skips them; a corrupt
    {e segment} file is skipped (and counted) by {!open_} and reported
    by {!fsck}. *)

exception Format_error of string
(** Unusable index: missing/invalid meta or manifest, or a source log
    whose tables disagree with the index's. *)

type build_stats = {
  segments_added : int;
  records_indexed : int;  (** intact source records newly indexed *)
  corrupt_skipped : int;  (** source records skipped on CRC/decode failure *)
  bytes_consumed : int;  (** new source bytes consumed by this build *)
}

type open_stats = {
  segments_loaded : int;
  segments_corrupt : int;  (** segment files skipped (bad CRC / decode) *)
  records_loaded : int;
}

type t = {
  dir : string;
  meta : Sbi_runtime.Dataset.t;  (** site/predicate tables (zero runs) *)
  log_dir : string option;  (** source log recorded in the manifest *)
  segments : Segref.t array;  (** lazy (v2) or in-memory (v1) handles *)
  seg_aggs : Sbi_ingest.Aggregator.t array;  (** parallel per-segment partial aggregates *)
  cache : Segref.cache;  (** shared posting cache behind all disk segments *)
  stats : open_stats;
  tail : tail;
  mutable epoch : int;  (** bumped by every accepted {!append} *)
  mutable snap : Snapshot.t option;  (** {!snapshot} cache; see below *)
}

(** Live, unindexed reports accepted since {!open_} (the serving path's
    ingest buffer).  Folded into every query; durably persisted by the
    caller (the server appends to the source log, and the next {!build}
    picks them up). *)
and tail

val build : ?io:Sbi_fault.Io.t -> log:string -> dir:string -> unit -> build_stats
(** Create [dir] as an index of [log], or incrementally extend an
    existing index with the log's unseen bytes.  The manifest is
    rewritten atomically (temp + rename) after all new segments are on
    disk.  [?io] routes meta, segment, and manifest writes through the
    fault injector (passthrough by default).  @raise Format_error on an
    unreadable log or manifest, or when [log]'s tables don't match the
    existing index. *)

val open_ : dir:string -> t
(** Load an index: meta, manifest, and per segment either its v2 footer
    (lazy: postings stay on disk behind the cache) or, for legacy v1
    files, a full decode.  Corrupt segments are skipped and counted in
    [stats].  The posting cache budget is [SBI_CACHE_BUDGET] heap words
    when that environment variable is set, else [2^22] (~32 MB).
    @raise Format_error when meta or manifest is missing/invalid. *)

val open_par : pool:Sbi_par.Domain_pool.t -> dir:string -> t
(** {!open_} with per-segment loading fanned across [pool].  Produces a
    state identical to {!open_} (segments stay in manifest order
    regardless of completion order). *)

val cache_stats : t -> Sbi_store.Lru.stats
(** Posting-cache counters (hits/misses/evictions/resident cost). *)

val validate : t -> Sbi_runtime.Report.t -> unit
(** @raise Invalid_argument when the report refers to sites/predicates
    outside the tables.  Lets callers reject a report {e before} any
    state (durable log, live tail) is touched. *)

val append : t -> Sbi_runtime.Report.t -> unit
(** Fold one live report into the in-memory tail.  @raise Invalid_argument
    when the report refers to sites/predicates outside the tables. *)

val tail_count : t -> int

val tail_reports : t -> Sbi_runtime.Report.t array
(** The live tail's reports in arrival order — what a caller must replay
    into a freshly opened index to carry the unindexed buffer across an
    index swap (the server's post-compaction reopen). *)

val tail_segment : t -> Segment.t option
(** The tail as an inverted segment (rebuilt lazily, cached between
    appends); [None] when no live reports exist. *)

val tail_aggregator : t -> Sbi_ingest.Aggregator.t

val all_segrefs : t -> Segref.t array
(** On-disk segments followed by the live tail's segment (when any live
    reports exist) — the full current run population, in stable order. *)

val epoch : t -> int
(** Monotone version of the index's run population: starts at 0 on
    {!open_}, incremented by every accepted {!append}. *)

val snapshot : ?pool:Sbi_par.Domain_pool.t -> t -> Snapshot.t
(** The epoch-stamped {!Snapshot} of the current population, cached on
    the index and invalidated only when {!append} bumps the epoch —
    repeated queries between ingests reuse the merged aggregate and the
    warm posting cache.

    Not linearizable on its own: concurrent callers must serialize
    [snapshot] against [append] (the server takes its write lock for
    both); the returned snapshot itself is immutable and safe to read
    from any number of domains. *)

val nruns : t -> int
val num_failures : t -> int

(** {1 Compaction}

    Size-tiered merging ({!Sbi_store.Tier}): whenever a tier holds
    [tier_max] (default 4) segments, all of them are concatenated into
    one segment of the next tier, cascading until no tier is overfull.
    Merging never rewrites run content — {!Segment.concat} preserves
    run order, outcomes and postings verbatim — so all rankings are
    bit-identical across a compaction.  Each round writes its merged
    segments, then atomically rewrites the manifest; obsolete files are
    deleted last.  A crash at any point leaves either the old manifest
    plus orphan merged files or the new manifest plus orphan inputs;
    {!repair} removes the orphans and {!fsck} then reports clean. *)

type compact_stats = {
  cp_rounds : int;
  cp_merged : int;  (** input segments merged away *)
  cp_written : int;  (** merged segments written *)
  cp_segments_before : int;
  cp_segments_after : int;
  cp_bytes_before : int;
  cp_bytes_after : int;  (** live (manifest-listed) bytes after *)
  cp_reclaimed : string list;
      (** obsolete segment files — deleted already unless [remove_old:false] *)
}

type compact_plan = {
  pl_tiers : (int * int * int * int) list;  (** (tier, segments, runs, bytes) *)
  pl_groups : (int * string list) list;  (** tier -> files that would merge *)
}

val compact :
  ?io:Sbi_fault.Io.t -> ?tier_max:int -> ?remove_old:bool -> dir:string -> unit -> compact_stats
(** Run compaction to quiescence (no overfull tier).  With
    [remove_old:false] the obsolete input files are left on disk and
    returned in [cp_reclaimed] — a live server deletes them only after
    draining readers off the old epoch.  @raise Format_error when the
    manifest is unusable or a to-be-merged segment is corrupt (run
    {!repair} first). *)

val compact_plan : ?tier_max:int -> dir:string -> unit -> compact_plan
(** What {!compact} would do, without writing — `cbi compact --dry-run`. *)

val pp_compact : compact_stats -> string
val pp_plan : compact_plan -> string

(** {1 Validation} *)

type fsck_seg = {
  seg_file : string;
  seg_ok : bool;
  seg_runs : int;
  seg_tier : int;  (** size tier ({!Sbi_store.Tier.tier_of} of [seg_runs]) *)
  seg_bytes : int;  (** on-disk size *)
  seg_error : string option;
}

type fsck_report = {
  fsck_segments : fsck_seg list;  (** in manifest order *)
  fsck_ok : int;
  fsck_corrupt : int;
  fsck_records : int;  (** runs in intact segments *)
  fsck_tiers : (int * int * int * int) list;
      (** per-tier (tier, segments, runs, bytes) over intact segments *)
  fsck_dead_files : string list;
      (** unreferenced segment files and [.tmp] strays (crash leftovers) *)
  fsck_dead_bytes : int;
  fsck_live_bytes : int;
}

val fsck : dir:string -> fsck_report
(** Validate every manifest-listed segment: existence, CRC, structure,
    table sizes against meta, manifest run counts, and — for v2 files —
    the footer path {!open_} actually takes.  Corrupt segments are
    reported, not fatal — mirroring {!open_}.  @raise Format_error when
    meta or the manifest itself is unusable. *)

val pp_fsck : fsck_report -> string

type repair_report = {
  rep_dropped : string list;  (** manifest-listed segments dropped *)
  rep_removed : string list;  (** files deleted: dropped segments, orphan segments, stray temp files *)
  rep_rollbacks : (int * int * int) list;
      (** (shard, old consumed offset, rolled-back offset) *)
}

val repair : dir:string -> repair_report
(** Restore a damaged index to a state {!fsck} reports clean: drop every
    corrupt/missing/mismatched segment, roll each covered shard's
    consumed offset back to the damaged segment's earliest cover start,
    and close the drop set under a fixpoint — any segment whose cover
    extends past a rollback point goes too (its bytes will be
    re-indexed), which for merged segments can poison further shards.
    Deletes dropped and orphaned segment files and stray [.tmp] files
    from killed atomic writes, then atomically rewrites the manifest.
    No intact data is lost: dropped ranges remain in the source log and
    the next {!build} re-indexes them.  A directory killed before meta
    or the manifest ever hit disk is reset to the fresh state (the next
    {!build} re-establishes it).  @raise Format_error when an existing
    meta/manifest is syntactically unusable. *)

val pp_repair : repair_report -> string
