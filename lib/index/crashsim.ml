open Sbi_runtime
open Sbi_ingest
module Fault = Sbi_fault.Fault
module Io = Sbi_fault.Io

type case_result = {
  case_name : string;
  case_ok : bool;
  case_detail : string;
  case_acked : int;
  case_recovered : int;
  case_injected : int;
}

type summary = { cases : case_result list; passed : int; failed : int }

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

(* --- synthetic workload --- *)

let nsites = 6
let npreds = 12

let synth_meta () =
  Dataset.of_tables ~nsites ~npreds ~pred_site:(Array.init npreds (fun p -> p / 2)) [||]

(* Deterministic, varied-size reports: the byte length of each framed
   record differs, so a kill at write #N lands at a different file offset
   in every position of the sweep. *)
let synth_report prng i : Report.t =
  let module P = Sbi_util.Prng in
  let nobs = 1 + P.int prng nsites in
  let observed_sites =
    Array.of_list
      (List.sort_uniq Int.compare (List.init nobs (fun _ -> P.int prng nsites)))
  in
  let ntrue = P.int prng (npreds / 2) in
  let true_preds =
    Array.of_list
      (List.sort_uniq Int.compare (List.init ntrue (fun _ -> P.int prng npreds)))
  in
  let true_counts = Array.map (fun _ -> 1 + P.int prng 9) true_preds in
  let failing = i mod 3 = 0 in
  {
    Report.run_id = i;
    outcome = (if failing then Report.Failure else Report.Success);
    observed_sites;
    true_preds;
    true_counts;
    bugs = (if failing then [| i mod 2 |] else [||]);
    crash_sig = (if failing then Some (Printf.sprintf "sig-%d" (i mod 4)) else None);
  }

let synth_reports n = Array.init n (synth_report (Sbi_util.Prng.create 42))

(* --- result helpers --- *)

let fail name ~acked ~recovered ~injected fmt =
  Printf.ksprintf
    (fun detail ->
      {
        case_name = name;
        case_ok = false;
        case_detail = detail;
        case_acked = acked;
        case_recovered = recovered;
        case_injected = injected;
      })
    fmt

let pass name ~acked ~recovered ~injected fmt =
  Printf.ksprintf
    (fun detail ->
      {
        case_name = name;
        case_ok = true;
        case_detail = detail;
        case_acked = acked;
        case_recovered = recovered;
        case_injected = injected;
      })
    fmt

(* Recovered records must be exactly attempts 0..k-1 (contiguous prefix,
   byte-identical).  Returns an error description or None. *)
let check_prefix ~attempted ~recovered =
  let k = Array.length recovered in
  if k > Array.length attempted then Some "recovered more records than were appended"
  else
    let bad = ref None in
    Array.iteri
      (fun i r ->
        if !bad = None && r <> attempted.(i) then
          bad := Some (Printf.sprintf "record %d differs from what was appended" i))
      recovered;
    !bad

(* --- log append-crash-reopen --- *)

let run_log_case ~dir ~nreports ~spec name =
  let meta = synth_meta () in
  let reports = synth_reports nreports in
  Shard_log.write_meta ~dir meta;
  let inj = Fault.create spec in
  let io = Io.faulty inj in
  let acked = ref 0 in
  let stopped = ref None in
  (try
     let w = Shard_log.create_writer ~io ~fsync:true ~dir ~shard:0 () in
     (try
        Array.iter
          (fun r ->
            Shard_log.append w r;
            incr acked)
          reports;
        ignore (Shard_log.close_writer w)
      with e ->
        (try ignore (Shard_log.close_writer w) with _ -> ());
        raise e)
   with
  | Fault.Crash msg -> stopped := Some msg
  | Unix.Unix_error (e, op, _) ->
      stopped := Some (Printf.sprintf "%s during %s" (Unix.error_message e) op));
  (* reopen the way a restarted process would: fault-free *)
  let injected = Fault.total_injected inj in
  match Shard_log.fold ~dir ~init:[] ~f:(fun acc r -> r :: acc) () with
  | exception Shard_log.Format_error msg ->
      fail name ~acked:!acked ~recovered:0 ~injected "reopen failed: %s" msg
  | rev, stats -> (
      let recovered = Array.of_list (List.rev rev) in
      let nrec = Array.length recovered in
      let result_base = (!acked, nrec, injected) in
      let acked, recovered_n, injected = result_base in
      if nrec < acked then
        fail name ~acked ~recovered:nrec ~injected
          "lost acknowledged reports: acked %d, recovered only %d" acked nrec
      else
        match check_prefix ~attempted:reports ~recovered with
        | Some msg -> fail name ~acked ~recovered:nrec ~injected "%s" msg
        | None ->
            if stats.Shard_log.corrupt_records > 0 then
              fail name ~acked ~recovered:nrec ~injected
                "crash damage decoded as %d corrupt mid-log records (should only truncate the tail)"
                stats.Shard_log.corrupt_records
            else
              pass name ~acked ~recovered:recovered_n ~injected
                "acked %d, recovered %d%s" acked nrec
                (match !stopped with Some m -> ", died: " ^ m | None -> ""))

(* --- group-commit window crash --- *)

(* Models the server's batched ingest path: raw (buffered, unfsynced)
   appends accumulate in a commit window of [batch] reports, then one
   {!Shard_log.sync} barrier acknowledges the whole window at once.
   Two ways to die: the injected [spec] (torn appends, failed syncs) and
   [kill_after] — a clean kill {e between} appends, which abandons the
   writer without flushing so every record buffered past the last
   barrier vanishes, exactly like a SIGKILL inside the window.  The
   invariant is one-sided: unacked reports may vanish or survive, acked
   ones must all be there, and whatever is recovered must be a
   contiguous byte-identical prefix of the append sequence. *)
let run_group_case ~dir ~nreports ~batch ?kill_after ~spec name =
  let meta = synth_meta () in
  let reports = synth_reports nreports in
  Shard_log.write_meta ~dir meta;
  let inj = Fault.create spec in
  let io = Io.faulty inj in
  let acked = ref 0 in
  let stopped = ref None in
  (try
     let w = Shard_log.create_writer ~io ~fsync:false ~dir ~shard:0 () in
     (try
        let pending = ref 0 and appended = ref 0 in
        (try
           Array.iter
             (fun r ->
               (match kill_after with
               | Some k when !appended >= k -> raise Stdlib.Exit
               | _ -> ());
               Shard_log.append_raw w r;
               incr appended;
               incr pending;
               if !pending >= batch then begin
                 (* the window filled: one barrier covers every report in it *)
                 Shard_log.sync w;
                 acked := !acked + !pending;
                 pending := 0
               end)
             reports;
           if !pending > 0 then begin
             (* shutdown flush: the final partial window *)
             Shard_log.sync w;
             acked := !acked + !pending
           end;
           ignore (Shard_log.close_writer w)
         with Stdlib.Exit ->
           stopped := Some "killed between appends inside the commit window";
           ignore (Shard_log.abandon_writer w))
      with e ->
        (* a process dying mid-window cannot flush what it buffered *)
        (try ignore (Shard_log.abandon_writer w) with _ -> ());
        raise e)
   with
  | Fault.Crash msg -> stopped := Some msg
  | Unix.Unix_error (e, op, _) ->
      stopped := Some (Printf.sprintf "%s during %s" (Unix.error_message e) op));
  (* reopen the way a restarted process would: fault-free *)
  let injected = Fault.total_injected inj in
  match Shard_log.fold ~dir ~init:[] ~f:(fun acc r -> r :: acc) () with
  | exception Shard_log.Format_error msg ->
      fail name ~acked:!acked ~recovered:0 ~injected "reopen failed: %s" msg
  | rev, stats -> (
      let recovered = Array.of_list (List.rev rev) in
      let nrec = Array.length recovered in
      let acked = !acked in
      if nrec < acked then
        fail name ~acked ~recovered:nrec ~injected
          "lost acknowledged reports: acked %d, recovered only %d" acked nrec
      else
        match check_prefix ~attempted:reports ~recovered with
        | Some msg -> fail name ~acked ~recovered:nrec ~injected "%s" msg
        | None ->
            if stats.Shard_log.corrupt_records > 0 then
              fail name ~acked ~recovered:nrec ~injected
                "crash damage decoded as %d corrupt mid-log records (should only truncate the tail)"
                stats.Shard_log.corrupt_records
            else
              pass name ~acked ~recovered:nrec ~injected "acked %d, recovered %d%s" acked
                nrec
                (match !stopped with Some m -> ", died: " ^ m | None -> ""))

(* --- read-side corruption --- *)

let run_read_case ~dir ~nreports ~spec name =
  let meta = synth_meta () in
  let reports = synth_reports nreports in
  Shard_log.write_meta ~dir meta;
  let w = Shard_log.create_writer ~dir ~shard:0 () in
  Array.iter (Shard_log.append w) reports;
  ignore (Shard_log.close_writer w);
  let inj = Fault.create spec in
  let io = Io.faulty inj in
  let by_id = Hashtbl.create nreports in
  Array.iter (fun (r : Report.t) -> Hashtbl.replace by_id r.Report.run_id r) reports;
  match Shard_log.fold ~io ~dir ~init:[] ~f:(fun acc r -> r :: acc) () with
  | exception Shard_log.Format_error _ ->
      (* corruption hit the header: detected loudly, nothing surfaced *)
      pass name ~acked:nreports ~recovered:0 ~injected:(Fault.total_injected inj)
        "header damage detected"
  | rev, _stats ->
      let surfaced = List.rev rev in
      let injected = Fault.total_injected inj in
      let garbage =
        List.find_opt
          (fun (r : Report.t) ->
            match Hashtbl.find_opt by_id r.Report.run_id with
            | Some orig -> r <> orig
            | None -> true)
          surfaced
      in
      let n = List.length surfaced in
      (match garbage with
      | Some r ->
          fail name ~acked:nreports ~recovered:n ~injected
            "corruption surfaced garbage record (run_id %d)" r.Report.run_id
      | None ->
          pass name ~acked:nreports ~recovered:n ~injected
            "%d/%d surfaced, all byte-identical" n nreports)

(* --- index build kill-repair-rebuild --- *)

let list_strays dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun name -> Filename.check_suffix name ".tmp")

let run_index_case ~dir ~kill_at name =
  let log = Filename.concat dir "log" in
  let idx = Filename.concat dir "idx" in
  let meta = synth_meta () in
  let reports = synth_reports 40 in
  let stats =
    Shard_log.write_dataset ~dir:log ~shards:2 { meta with Dataset.runs = reports }
  in
  let total = stats.Shard_log.records in
  let inj = Fault.create (Fault.kill_at ~seed:kill_at kill_at) in
  let crashed =
    match Index.build ~io:(Io.faulty inj) ~log ~dir:idx () with
    | _ -> false
    | exception Fault.Crash _ -> true
  in
  let injected = Fault.total_injected inj in
  match
    (if crashed then ignore (Index.repair ~dir:idx);
     Index.build ~log ~dir:idx ())
  with
  | exception Index.Format_error msg ->
      fail name ~acked:total ~recovered:0 ~injected "recovery failed: %s" msg
  | _ -> (
      let r = Index.fsck ~dir:idx in
      let strays = list_strays idx in
      if r.Index.fsck_corrupt > 0 then
        fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
          "fsck still corrupt after repair+rebuild:\n%s" (Index.pp_fsck r)
      else if r.Index.fsck_records <> total then
        fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
          "rebuilt index holds %d of %d log records" r.Index.fsck_records total
      else if strays <> [] then
        fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
          "stray temp files survived repair: %s" (String.concat ", " strays)
      else
        match Index.open_ ~dir:idx with
        | exception Index.Format_error msg ->
            fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
              "rebuilt index does not open: %s" msg
        | t ->
            if Index.nruns t <> total then
              fail name ~acked:total ~recovered:(Index.nruns t) ~injected
                "opened index exposes %d of %d runs" (Index.nruns t) total
            else
              pass name ~acked:total ~recovered:total ~injected "%s"
                (if crashed then "killed, repaired, rebuilt clean" else "no kill reached"))

(* --- compaction kill-repair --- *)

(* Exact ranking fingerprint: %h renders the float bit pattern, so any
   drift across kill/repair/compact — not just reordering — trips it. *)
let ranking_sig idx =
  List.map
    (fun (sc : Sbi_core.Scores.t) ->
      Printf.sprintf "%d:%h:%h:%d:%d" sc.Sbi_core.Scores.pred sc.Sbi_core.Scores.importance
        sc.Sbi_core.Scores.increase sc.Sbi_core.Scores.f sc.Sbi_core.Scores.s)
    (Triage.topk ~k:8 idx)

(* Append-and-build in waves so the index accumulates one segment per
   shard per wave — a multi-segment tier 0 for compaction to fold. *)
let build_waved ~log ~idx ~waves ~per_wave =
  let meta = synth_meta () in
  Shard_log.write_meta ~dir:log meta;
  let reports = synth_reports (waves * per_wave) in
  for w = 0 to waves - 1 do
    let writers =
      Array.init 2 (fun shard -> Shard_log.create_writer ~append:true ~dir:log ~shard ())
    in
    for i = w * per_wave to ((w + 1) * per_wave) - 1 do
      Shard_log.append writers.(i mod 2) reports.(i)
    done;
    Array.iter (fun wr -> ignore (Shard_log.close_writer wr)) writers;
    ignore (Index.build ~log ~dir:idx ())
  done;
  Array.length reports

let run_compact_case ~dir ~kill_at name =
  let log = Filename.concat dir "log" in
  let idx = Filename.concat dir "idx" in
  let total = build_waved ~log ~idx ~waves:4 ~per_wave:10 in
  let before = Index.open_ ~dir:idx in
  let ref_sig = ranking_sig before in
  let segs_before = Array.length before.Index.segments in
  let inj = Fault.create (Fault.kill_at ~seed:kill_at kill_at) in
  let crashed =
    match Index.compact ~io:(Io.faulty inj) ~dir:idx () with
    | _ -> false
    | exception Fault.Crash _ -> true
  in
  let injected = Fault.total_injected inj in
  match
    (if crashed then ignore (Index.repair ~dir:idx);
     (* a repair may have rolled shard offsets back past dropped merge
        inputs: re-index the rolled-back range, then finish the merge *)
     ignore (Index.build ~log ~dir:idx ());
     Index.compact ~dir:idx ())
  with
  | exception Index.Format_error msg ->
      fail name ~acked:total ~recovered:0 ~injected "recovery failed: %s" msg
  | _ -> (
      let r = Index.fsck ~dir:idx in
      let strays = list_strays idx in
      if r.Index.fsck_corrupt > 0 then
        fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
          "fsck still corrupt after repair+compact:\n%s" (Index.pp_fsck r)
      else if r.Index.fsck_records <> total then
        fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
          "recovered index holds %d of %d log records" r.Index.fsck_records total
      else if strays <> [] then
        fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
          "stray temp files survived repair: %s" (String.concat ", " strays)
      else if r.Index.fsck_dead_files <> [] then
        fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
          "orphan segment files survived repair: %s"
          (String.concat ", " r.Index.fsck_dead_files)
      else
        match Index.open_ ~dir:idx with
        | exception Index.Format_error msg ->
            fail name ~acked:total ~recovered:r.Index.fsck_records ~injected
              "recovered index does not open: %s" msg
        | t ->
            if Index.nruns t <> total then
              fail name ~acked:total ~recovered:(Index.nruns t) ~injected
                "opened index exposes %d of %d runs" (Index.nruns t) total
            else if ranking_sig t <> ref_sig then
              fail name ~acked:total ~recovered:total ~injected
                "ranking not bit-identical across kill+repair+compact"
            else if Array.length t.Index.segments >= segs_before then
              fail name ~acked:total ~recovered:total ~injected
                "compaction left %d segment(s), had %d"
                (Array.length t.Index.segments) segs_before
            else
              pass name ~acked:total ~recovered:total ~injected
                "%d -> %d segment(s), ranking bit-identical%s" segs_before
                (Array.length t.Index.segments)
                (if crashed then ", killed+repaired" else ", no kill reached"))

(* --- the matrix --- *)

let run_matrix ?(verbose = false) ~scratch () =
  ensure_dir scratch;
  let counter = ref 0 in
  let fresh_dir () =
    incr counter;
    let d = Filename.concat scratch (Printf.sprintf "case-%03d" !counter) in
    ensure_dir d;
    d
  in
  let results = ref [] in
  let add r =
    if verbose then
      Printf.printf "%s %s: %s\n%!" (if r.case_ok then "ok  " else "FAIL") r.case_name
        r.case_detail;
    results := r :: !results
  in
  let nreports = 40 in
  (* kill at every early write plus strides through the rest: write #1 is
     the shard header, #k is record k-1, #nreports+1 is past the end *)
  let kill_points =
    List.init 12 (fun i -> i + 1) @ [ 16; 20; 27; 33; nreports; nreports + 1 ]
  in
  List.iter
    (fun k ->
      add
        (run_log_case ~dir:(fresh_dir ()) ~nreports ~spec:(Fault.kill_at ~seed:k k)
           (Printf.sprintf "log:kill@%d" k)))
    kill_points;
  let prob_cases =
    [
      ("torn", Fault.Torn_write, 0.05);
      ("fsync-fail", Fault.Fsync_fail, 0.08);
      ("disk-full", Fault.Disk_full, 0.05);
    ]
  in
  List.iter
    (fun (label, kind, p) ->
      List.iter
        (fun seed ->
          add
            (run_log_case ~dir:(fresh_dir ()) ~nreports
               ~spec:(Fault.with_p ~seed [ (kind, p) ])
               (Printf.sprintf "log:%s/s%d" label seed)))
        [ 1; 2; 3 ])
    prob_cases;
  List.iter
    (fun (label, kind, p) ->
      List.iter
        (fun seed ->
          add
            (run_read_case ~dir:(fresh_dir ()) ~nreports
               ~spec:(Fault.with_p ~seed [ (kind, p) ])
               (Printf.sprintf "read:%s/s%d" label seed)))
        [ 1; 2; 3 ])
    [ ("bit-flip", Fault.Bit_flip, 0.5); ("short", Fault.Short_read, 0.5) ];
  (* group-commit window: raw appends + one sync barrier per [batch].
     Sweep clean kills between appends (the buffered, unacked suffix of
     the window vanishes), torn appends, and failed sync barriers — in
     every case acked ⊆ recovered ⊆ appended, contiguous and
     byte-identical *)
  List.iter
    (fun batch ->
      List.iter
        (fun k ->
          add
            (run_group_case ~dir:(fresh_dir ()) ~nreports ~batch ~kill_after:k
               ~spec:Fault.quiet
               (Printf.sprintf "group:b%d:kill@%d" batch k)))
        [ 0; 1; 2; 4; 7; 11; 19; 26; 39; nreports ])
    [ 3; 8 ];
  List.iter
    (fun seed ->
      add
        (run_group_case ~dir:(fresh_dir ()) ~nreports ~batch:8
           ~spec:(Fault.with_p ~seed [ (Fault.Fsync_fail, 0.2) ])
           (Printf.sprintf "group:fsync-fail/s%d" seed)))
    [ 1; 2; 3 ];
  List.iter
    (fun seed ->
      add
        (run_group_case ~dir:(fresh_dir ()) ~nreports ~batch:5
           ~spec:(Fault.with_p ~seed [ (Fault.Torn_write, 0.05) ])
           (Printf.sprintf "group:torn/s%d" seed)))
    [ 1; 2; 3 ];
  (* index build writes: meta, one segment per shard, manifest = 4 writes
     for a two-shard log; sweep past the end to cover the no-kill path *)
  List.iter
    (fun k ->
      add (run_index_case ~dir:(fresh_dir ()) ~kill_at:k (Printf.sprintf "index:kill@%d" k)))
    [ 1; 2; 3; 4; 5 ];
  (* compaction writes: merged segment(s) + manifest rewrite; higher kill
     points degenerate to the fault-free path, which must also verify *)
  List.iter
    (fun k ->
      add
        (run_compact_case ~dir:(fresh_dir ()) ~kill_at:k
           (Printf.sprintf "compact:kill@%d" k)))
    [ 1; 2; 3; 4 ];
  let cases = List.rev !results in
  let passed = List.length (List.filter (fun c -> c.case_ok) cases) in
  { cases; passed; failed = List.length cases - passed }

let pp_summary s =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      if not c.case_ok then
        Buffer.add_string buf (Printf.sprintf "FAIL %s: %s\n" c.case_name c.case_detail))
    s.cases;
  let injected = List.fold_left (fun acc c -> acc + c.case_injected) 0 s.cases in
  Buffer.add_string buf
    (Printf.sprintf "%d case(s): %d passed, %d failed, %d fault(s) injected\n"
       (List.length s.cases) s.passed s.failed injected);
  Buffer.contents buf
