open Sbi_runtime

type view = {
  v_nruns : int;
  v_failing : Bitset.t;
  v_pred_bits : Bitset.t array;
  v_site_bits : Bitset.t array;
}

type t = {
  epoch : int;
  meta : Dataset.t;
  views : view array;
  counts : Sbi_core.Counts.t;
}

let view_of_segment (seg : Segment.t) =
  let nruns = seg.Segment.nruns in
  {
    v_nruns = nruns;
    (* segments never mutate their outcome bitmap after construction, so
       the view shares it; elimination copies before flipping bits *)
    v_failing = seg.Segment.failing;
    v_pred_bits = Array.map (Bitset.of_positions nruns) seg.Segment.pred_true;
    v_site_bits = Array.map (Bitset.of_positions nruns) seg.Segment.site_obs;
  }

let build ?pool ~epoch ~meta ~counts segments =
  let views =
    match pool with
    | Some pool -> Sbi_par.Domain_pool.map_array pool view_of_segment segments
    | None -> Array.map view_of_segment segments
  in
  { epoch; meta; views; counts }

let epoch t = t.epoch
let counts t = t.counts
let nruns t = t.counts.Sbi_core.Counts.num_f + t.counts.Sbi_core.Counts.num_s
let num_failures t = t.counts.Sbi_core.Counts.num_f
