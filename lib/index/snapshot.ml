open Sbi_runtime
module Rbitmap = Sbi_store.Rbitmap

type view = {
  v_nruns : int;
  v_failing : unit -> Bitset.t;
  v_pred_bits : int -> Rbitmap.t;
  v_site_bits : int -> Rbitmap.t;
}

type t = {
  epoch : int;
  meta : Dataset.t;
  views : view array;
  counts : Sbi_core.Counts.t;
}

let view_of_segref sr =
  {
    v_nruns = Segref.nruns sr;
    v_failing = (fun () -> Segref.failing sr);
    v_pred_bits = (fun i -> Segref.pred_bits sr i);
    v_site_bits = (fun i -> Segref.site_bits sr i);
  }

let build ?pool ~epoch ~meta ~counts segrefs =
  (* views are lazy handles now — nothing to densify eagerly, so the pool
     (kept for API stability) has no up-front fan-out to run *)
  ignore pool;
  { epoch; meta; views = Array.map view_of_segref segrefs; counts }

let epoch t = t.epoch
let counts t = t.counts
let nruns t = t.counts.Sbi_core.Counts.num_f + t.counts.Sbi_core.Counts.num_s
let num_failures t = t.counts.Sbi_core.Counts.num_f
