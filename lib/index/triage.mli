(** Snapshot-cached triage queries over an open {!Index}.

    Every read runs against the index's epoch-stamped {!Snapshot}
    (built once per ingest epoch, cached on the index): aggregate
    counts come from the snapshot's merged aggregate, and run-subset
    computations (affinity, iterative elimination) are word-level
    {!Bitset} popcount kernels over per-view alive/failing masks —
    never a posting walk, never a corpus rescan.  The per-predicate
    rescoring inside elimination and affinity fans across [pool] when
    one is given — chunked at {!rescore_grain}, each domain filling a
    private scratch accumulator merged at the barrier — so results are
    bit-identical at any pool size.  Every query below is
    {e equal} — same integers, hence bit-identical scores — to its
    full-dataset counterpart in {!Sbi_core.Analysis} (property-tested).

    The [?pool] argument is used both to build a stale snapshot in
    parallel and to fan the query itself.  Callers that already hold a
    consistent {!Snapshot.t} (e.g. the server's lock-free read path)
    should use the {!Snap} variants directly. *)

val rescore_grain : int
(** Sequential cutoff / minimum chunk size for the per-predicate
    rescoring fan-out (flat index space [0, npreds + nsites)). *)

val counts : ?pool:Sbi_par.Domain_pool.t -> Index.t -> Sbi_core.Counts.t
(** Merged §3.1 counts over all segments + live tail; equals
    [Counts.compute] on the materialized corpus. *)

val topk :
  ?pool:Sbi_par.Domain_pool.t -> ?confidence:float -> ?k:int -> Index.t -> Sbi_core.Scores.t list
(** The [k] (default 10) highest-Importance predicates among those
    surviving Increase-CI pruning, best first — the ranking
    [cbi analyze-file --stream] prints, without rescanning the log. *)

val topk_f :
  ?pool:Sbi_par.Domain_pool.t ->
  ?confidence:float ->
  ?k:int ->
  formula:Sbi_sbfl.Formula.t ->
  Index.t ->
  Sbi_sbfl.Ranking.entry list
(** {!topk} under an arbitrary SBFL formula: same Increase-CI pruned
    candidate set, ranked by the formula's score (desc, ties F desc then
    id asc) — computed off the snapshot's cached aggregate, never a
    rescan.  With [~formula:Sbi_sbfl.Formula.importance] the predicates
    and scores are bit-identical to {!topk}. *)

val pred_detail :
  ?pool:Sbi_par.Domain_pool.t -> ?confidence:float -> Index.t -> pred:int -> Sbi_core.Scores.t
(** Full score card (F, S, Context, Increase + CI, Importance + CI).
    @raise Invalid_argument when [pred] is outside the tables. *)

val pred_score :
  ?pool:Sbi_par.Domain_pool.t ->
  ?confidence:float ->
  Index.t ->
  pred:int ->
  formula:Sbi_sbfl.Formula.t ->
  float * Sbi_core.Scores.t
(** The formula's score for one predicate alongside the full paper score
    card, both from the same snapshot aggregate.
    @raise Invalid_argument when [pred] is outside the tables. *)

val cooccurrence : Index.t -> a:int -> b:int -> int
(** Runs in which both predicates were observed true: posting-list
    intersection, summed across segments (no snapshot needed). *)

val affinity :
  ?pool:Sbi_par.Domain_pool.t ->
  ?confidence:float ->
  Index.t ->
  selected:int ->
  others:int list ->
  Sbi_core.Affinity.entry list
(** Equals {!Sbi_core.Analysis.affinity_for} on the materialized corpus:
    Importance drop of each other predicate once the runs covered by
    [selected] are removed (one [diff_inplace] per view plus a fanned
    popcount rescoring, not a dataset rebuild). *)

val eliminate :
  ?pool:Sbi_par.Domain_pool.t ->
  ?discard:Sbi_core.Eliminate.discard ->
  ?confidence:float ->
  ?max_selections:int ->
  ?candidates:int list ->
  Index.t ->
  Sbi_core.Eliminate.result
(** Index-backed mirror of {!Sbi_core.Eliminate.run}: same candidate
    defaulting, same per-step ranking, same discard semantics (bitmap
    kernels instead of dataset filtering), same selection records. *)

type analysis = {
  counts : Sbi_core.Counts.t;
  retained : int list;
  elimination : Sbi_core.Eliminate.result;
}

val analyze :
  ?pool:Sbi_par.Domain_pool.t ->
  ?discard:Sbi_core.Eliminate.discard ->
  ?confidence:float ->
  ?max_selections:int ->
  Index.t ->
  analysis
(** Index-backed mirror of {!Sbi_core.Analysis.analyze}: identical
    retained set, selection order, and scores — with or without [pool]. *)

val summary : Index.t -> analysis -> Sbi_core.Analysis.summary

(** Same queries against a caller-held snapshot: the server's epoch
    read path grabs the current snapshot under its write lock, releases
    the lock, and answers from the snapshot without blocking ingest. *)
module Snap : sig
  val counts : Snapshot.t -> Sbi_core.Counts.t
  val topk : ?confidence:float -> ?k:int -> Snapshot.t -> Sbi_core.Scores.t list

  val topk_f :
    ?confidence:float ->
    ?k:int ->
    formula:Sbi_sbfl.Formula.t ->
    Snapshot.t ->
    Sbi_sbfl.Ranking.entry list

  val pred_detail : ?confidence:float -> Snapshot.t -> pred:int -> Sbi_core.Scores.t

  val pred_score :
    ?confidence:float ->
    Snapshot.t ->
    pred:int ->
    formula:Sbi_sbfl.Formula.t ->
    float * Sbi_core.Scores.t

  val affinity :
    ?pool:Sbi_par.Domain_pool.t ->
    ?confidence:float ->
    Snapshot.t ->
    selected:int ->
    others:int list ->
    Sbi_core.Affinity.entry list

  val eliminate :
    ?pool:Sbi_par.Domain_pool.t ->
    ?discard:Sbi_core.Eliminate.discard ->
    ?confidence:float ->
    ?max_selections:int ->
    ?candidates:int list ->
    Snapshot.t ->
    Sbi_core.Eliminate.result
end
