(** Incremental triage queries over an open {!Index}.

    Aggregate counts come from merging per-segment partial aggregates
    (plus the live tail) on demand — O(segments × npreds), never a corpus
    rescan.  Run-subset computations (affinity, iterative elimination)
    walk posting lists against per-segment alive/failing bitsets, which
    is exactly the information {!Sbi_core.Counts.compute} extracts from
    materialized reports; every query below is therefore {e equal} — same
    integers, hence bit-identical scores — to its full-dataset
    counterpart in {!Sbi_core.Analysis} (property-tested). *)

val counts : Index.t -> Sbi_core.Counts.t
(** Merged §3.1 counts over all segments + live tail; equals
    [Counts.compute] on the materialized corpus. *)

val topk : ?confidence:float -> ?k:int -> Index.t -> Sbi_core.Scores.t list
(** The [k] (default 10) highest-Importance predicates among those
    surviving Increase-CI pruning, best first — the ranking
    [cbi analyze-file --stream] prints, without rescanning the log. *)

val pred_detail : ?confidence:float -> Index.t -> pred:int -> Sbi_core.Scores.t
(** Full score card (F, S, Context, Increase + CI, Importance + CI).
    @raise Invalid_argument when [pred] is outside the tables. *)

val cooccurrence : Index.t -> a:int -> b:int -> int
(** Runs in which both predicates were observed true: posting-list
    intersection, summed across segments. *)

val affinity :
  ?confidence:float -> Index.t -> selected:int -> others:int list -> Sbi_core.Affinity.entry list
(** Equals {!Sbi_core.Analysis.affinity_for} on the materialized corpus:
    Importance drop of each other predicate once the runs covered by
    [selected] are removed (computed by intersecting posting lists with
    the complement bitset, not by rebuilding a dataset). *)

val eliminate :
  ?discard:Sbi_core.Eliminate.discard ->
  ?confidence:float ->
  ?max_selections:int ->
  ?candidates:int list ->
  Index.t ->
  Sbi_core.Eliminate.result
(** Index-backed mirror of {!Sbi_core.Eliminate.run}: same candidate
    defaulting, same per-step ranking, same discard semantics (bitset
    updates instead of dataset filtering), same selection records. *)

type analysis = {
  counts : Sbi_core.Counts.t;
  retained : int list;
  elimination : Sbi_core.Eliminate.result;
}

val analyze :
  ?discard:Sbi_core.Eliminate.discard ->
  ?confidence:float ->
  ?max_selections:int ->
  Index.t ->
  analysis
(** Index-backed mirror of {!Sbi_core.Analysis.analyze}: identical
    retained set, selection order, and scores. *)

val summary : Index.t -> analysis -> Sbi_core.Analysis.summary
