module Rbitmap = Sbi_store.Rbitmap
module Lru = Sbi_store.Lru

(* A segment reference: the snapshot/triage layers' uniform handle over a
   fully decoded in-memory segment (live tail, legacy v1 files) or a
   lazily loaded v2 file opened from its footer alone.  Disk postings are
   materialized as compressed {!Rbitmap}s through a shared LRU cache, so
   resident memory is bounded by the cache budget, not the index size.

   Memo fields are racy on purpose: values are immutable once built, an
   OCaml pointer store is atomic, and duplicated conversion work between
   two racing readers is cheaper than a lock on every kernel call. *)

type cache = (string * bool * int, Rbitmap.t) Lru.t

let create_cache ?budget () = Lru.create ?budget ~cost:Rbitmap.memory_words ()

type mem = {
  m_seg : Segment.t;
  m_pred_r : Rbitmap.t option array;
  m_site_r : Rbitmap.t option array;
}

type disk = {
  d_path : string;
  d_io : Sbi_fault.Io.t;
  d_footer : Segment.footer;
  d_cache : cache;
  mutable d_failing : Bitset.t option;
}

type source = Mem of mem | Disk of disk

type t = { sr_file : string; sr_nruns : int; sr_num_f : int; source : source }

let of_segment ~file (seg : Segment.t) =
  {
    sr_file = file;
    sr_nruns = seg.Segment.nruns;
    sr_num_f = Bitset.count seg.Segment.failing;
    source =
      Mem
        {
          m_seg = seg;
          m_pred_r = Array.make (max seg.Segment.npreds 1) None;
          m_site_r = Array.make (max seg.Segment.nsites 1) None;
        };
  }

let of_disk ?(io = Sbi_fault.Io.none) ~cache ~path ~file (ft : Segment.footer) =
  {
    sr_file = file;
    sr_nruns = ft.Segment.ft_nruns;
    sr_num_f = ft.Segment.ft_num_f;
    source = Disk { d_path = path; d_io = io; d_footer = ft; d_cache = cache; d_failing = None };
  }

let file t = t.sr_file
let nruns t = t.sr_nruns
let num_f t = t.sr_num_f

let failing t =
  match t.source with
  | Mem m -> m.m_seg.Segment.failing
  | Disk d -> (
      match d.d_failing with
      | Some b -> b
      | None ->
          let b = Segment.read_failing ~io:d.d_io d.d_path d.d_footer in
          d.d_failing <- Some b;
          b)

let memo_bits arr positions nruns i =
  match arr.(i) with
  | Some r -> r
  | None ->
      let r = Rbitmap.of_positions nruns positions.(i) in
      arr.(i) <- Some r;
      r

let disk_bits d kind i =
  let is_pred = kind = `Pred in
  Lru.find_or_add d.d_cache (d.d_path, is_pred, i) (fun () ->
      Rbitmap.of_positions d.d_footer.Segment.ft_nruns
        (Segment.read_posting ~io:d.d_io d.d_path d.d_footer kind i))

let pred_bits t i =
  match t.source with
  | Mem m -> memo_bits m.m_pred_r m.m_seg.Segment.pred_true t.sr_nruns i
  | Disk d -> disk_bits d `Pred i

let site_bits t i =
  match t.source with
  | Mem m -> memo_bits m.m_site_r m.m_seg.Segment.site_obs t.sr_nruns i
  | Disk d -> disk_bits d `Site i

let pred_posting t i =
  match t.source with
  | Mem m -> m.m_seg.Segment.pred_true.(i)
  | Disk d -> Rbitmap.to_positions (disk_bits d `Pred i)

let aggregator ~pred_site t =
  match t.source with
  | Mem m -> Segment.aggregator ~pred_site m.m_seg
  | Disk d -> Segment.footer_aggregator ~pred_site d.d_footer
