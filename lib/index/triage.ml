open Sbi_runtime
open Sbi_core
module Rbitmap = Sbi_store.Rbitmap

(* --- snapshot-level queries ---

   Every read below runs against an epoch-stamped {!Snapshot}: the merged
   aggregate is computed once per epoch (not once per query), and the
   run-subset computations (affinity, iterative elimination) are word-level
   popcount kernels over per-view alive/failing masks instead of per-bit
   posting walks.  The integers produced are exactly those of
   [Counts.compute] on the corresponding materialized corpus, so scores and
   rankings stay bit-identical to [Sbi_core.Analysis] for any pool size. *)

type view_state = { view : Snapshot.view; alive : Bitset.t; failing : Bitset.t }

let fresh_states (snap : Snapshot.t) =
  Array.map
    (fun (v : Snapshot.view) ->
      {
        view = v;
        alive = Bitset.full v.Snapshot.v_nruns;
        failing = Bitset.copy (v.Snapshot.v_failing ());
      })
    snap.Snapshot.views

(* Counts over the current alive runs with current outcomes — the exact
   quantities Counts.compute extracts from the corresponding filtered /
   relabeled dataset.  Predicates and sites are independent, so the
   per-predicate rescoring fans across the domain pool as one flat index
   space [0, npreds + nsites) with block-disjoint writes. *)
(* Minimum chunk size for the rescoring fan-out: each element costs a
   handful of popcount loops over the run bitmaps, so chunks of ~16
   amortize handoff without starving small-predicate corpora of
   parallelism. *)
let rescore_grain = 16

(* Per-domain private accumulators for the rescoring kernel.  Each
   participant writes only its own arrays during the loop (the shared
   result arrays would otherwise ping-pong cache lines at every chunk
   boundary); merging is an elementwise sum at the barrier, and since
   every flat index is written by exactly one chunk — hence exactly one
   participant — the sums are of one value plus zeros: bit-identical to
   the sequential fill for any domain count. *)
type rescore_scratch = {
  rs_f : int array;
  rs_s : int array;
  rs_fo : int array;
  rs_so : int array;
}

(* pad each private array past a 64-byte cache line so two domains'
   scratch never share a line even when freshly allocated back-to-back *)
let scratch_pad = 8

let counts_of_states ?pool (meta : Dataset.t) states =
  let npreds = meta.Dataset.npreds and nsites = meta.Dataset.nsites in
  let f = Array.make npreds 0 and s = Array.make npreds 0 in
  let f_obs_site = Array.make (max nsites 1) 0 and s_obs_site = Array.make (max nsites 1) 0 in
  let num_f = ref 0 and num_s = ref 0 in
  Array.iter
    (fun st ->
      let nf = Bitset.inter_count st.alive st.failing in
      num_f := !num_f + nf;
      num_s := !num_s + (Bitset.count st.alive - nf))
    states;
  let fill fa sa foa soa lo hi =
    for i = lo to hi - 1 do
      if i < npreds then begin
        let fp = ref 0 and tp = ref 0 in
        Array.iter
          (fun st ->
            let bits = st.view.Snapshot.v_pred_bits i in
            fp := !fp + Rbitmap.inter_count3 bits st.alive st.failing;
            tp := !tp + Rbitmap.inter_count bits st.alive)
          states;
        fa.(i) <- !fp;
        sa.(i) <- !tp - !fp
      end
      else begin
        let site = i - npreds in
        let fo = ref 0 and t_o = ref 0 in
        Array.iter
          (fun st ->
            let bits = st.view.Snapshot.v_site_bits site in
            fo := !fo + Rbitmap.inter_count3 bits st.alive st.failing;
            t_o := !t_o + Rbitmap.inter_count bits st.alive)
          states;
        foa.(site) <- !fo;
        soa.(site) <- !t_o - !fo
      end
    done
  in
  let n = npreds + nsites in
  (match pool with
  | Some pool ->
      Sbi_par.Domain_pool.parallel_for_scratch pool ~grain:rescore_grain ~n
        ~scratch:(fun () ->
          {
            rs_f = Array.make (npreds + scratch_pad) 0;
            rs_s = Array.make (npreds + scratch_pad) 0;
            rs_fo = Array.make (max nsites 1 + scratch_pad) 0;
            rs_so = Array.make (max nsites 1 + scratch_pad) 0;
          })
        ~merge:(fun sc ->
          for i = 0 to npreds - 1 do
            f.(i) <- f.(i) + sc.rs_f.(i);
            s.(i) <- s.(i) + sc.rs_s.(i)
          done;
          for site = 0 to nsites - 1 do
            f_obs_site.(site) <- f_obs_site.(site) + sc.rs_fo.(site);
            s_obs_site.(site) <- s_obs_site.(site) + sc.rs_so.(site)
          done)
        (fun sc lo hi -> fill sc.rs_f sc.rs_s sc.rs_fo sc.rs_so lo hi)
  | None -> fill f s f_obs_site s_obs_site 0 n);
  {
    Counts.npreds;
    f;
    s;
    f_obs = Array.init npreds (fun p -> f_obs_site.(meta.Dataset.pred_site.(p)));
    s_obs = Array.init npreds (fun p -> s_obs_site.(meta.Dataset.pred_site.(p)));
    num_f = !num_f;
    num_s = !num_s;
  }

let alive_count states =
  Array.fold_left (fun acc st -> acc + Bitset.count st.alive) 0 states

let failing_count states =
  Array.fold_left (fun acc st -> acc + Bitset.inter_count st.alive st.failing) 0 states

let apply_discard discard states pred =
  Array.iter
    (fun st ->
      let bits = st.view.Snapshot.v_pred_bits pred in
      match discard with
      | Eliminate.Discard_all_true -> Rbitmap.diff_inplace st.alive bits
      | Eliminate.Discard_failing_true -> Rbitmap.diff_inter_inplace st.alive bits st.failing
      | Eliminate.Relabel_failing -> Rbitmap.diff_inter_inplace st.failing bits st.alive)
    states

module Snap = struct
  let counts = Snapshot.counts

  let topk ?confidence ?(k = 10) snap =
    Sbi_obs.Trace.with_span ~name:"triage.topk" ~args:(Printf.sprintf "k=%d" k) (fun () ->
        let retained = Prune.retained_scores ?confidence (Snapshot.counts snap) in
        Sbi_util.Topk.top ~k
          ~compare:(fun a b -> Scores.compare_importance_desc b a)
          retained)

  (* Formula-parameterized top-k: same CI-pruned candidate set, ranked by
     an arbitrary registered formula.  Runs entirely off the snapshot's
     cached aggregate — switching formulas is a re-fold of the counter
     table, never a rescan.  With [formula = Formula.importance] the
     selected predicates and scores are bit-identical to {!topk}
     (property-tested): same candidates, and Ranking's comparator breaks
     ties exactly like [Scores.compare_importance_desc]. *)
  let topk_f ?confidence ?(k = 10) ~formula snap =
    Sbi_obs.Trace.with_span ~name:"triage.topk"
      ~args:(Printf.sprintf "k=%d formula=%s" k formula.Sbi_sbfl.Formula.name)
      (fun () ->
        let counts = Snapshot.counts snap in
        let candidates = Prune.retained ?confidence counts in
        Sbi_sbfl.Ranking.topk ~k ~candidates formula counts)

  let pred_score ?confidence snap ~pred ~formula =
    let meta = snap.Snapshot.meta in
    if pred < 0 || pred >= meta.Dataset.npreds then
      invalid_arg (Printf.sprintf "Triage.pred_score: predicate %d out of range" pred);
    let counts = Snapshot.counts snap in
    (Sbi_sbfl.Ranking.score formula counts ~pred, Scores.score ?confidence counts ~pred)

  let pred_detail ?confidence snap ~pred =
    let meta = snap.Snapshot.meta in
    if pred < 0 || pred >= meta.Dataset.npreds then
      invalid_arg (Printf.sprintf "Triage.pred_detail: predicate %d out of range" pred);
    Scores.score ?confidence (Snapshot.counts snap) ~pred

  let affinity ?pool ?(confidence = 0.95) snap ~selected ~others =
    Sbi_obs.Trace.with_span ~name:"triage.affinity" ~args:(Printf.sprintf "pred=%d" selected)
    @@ fun () ->
    let counts_before = Snapshot.counts snap in
    let states_without =
      Array.map
        (fun (v : Snapshot.view) ->
          let alive = Bitset.full v.Snapshot.v_nruns in
          Rbitmap.diff_inplace alive (v.Snapshot.v_pred_bits selected);
          { view = v; alive; failing = Bitset.copy (v.Snapshot.v_failing ()) })
        snap.Snapshot.views
    in
    let counts_after = counts_of_states ?pool snap.Snapshot.meta states_without in
    let entries =
      List.filter_map
        (fun pred ->
          if pred = selected then None
          else begin
            let before = (Scores.score ~confidence counts_before ~pred).Scores.importance in
            let after = (Scores.score ~confidence counts_after ~pred).Scores.importance in
            Some
              {
                Affinity.pred;
                importance_before = before;
                importance_after = after;
                drop = before -. after;
              }
          end)
        others
    in
    List.sort
      (fun (a : Affinity.entry) (b : Affinity.entry) ->
        match Float.compare b.Affinity.drop a.Affinity.drop with
        | 0 -> Int.compare a.Affinity.pred b.Affinity.pred
        | n -> n)
      entries

  let eliminate ?pool ?(discard = Eliminate.Discard_all_true) ?(confidence = 0.95)
      ?(max_selections = 40) ?candidates snap =
    Sbi_obs.Trace.with_span ~name:"triage.eliminate"
      ~args:(Printf.sprintf "max=%d" max_selections)
    @@ fun () ->
    let meta = snap.Snapshot.meta in
    let states = fresh_states snap in
    let initial_counts = Snapshot.counts snap in
    let candidates =
      match candidates with
      | Some c -> c
      | None -> (
          match discard with
          | Eliminate.Discard_all_true -> Prune.retained ~confidence initial_counts
          | Eliminate.Discard_failing_true | Eliminate.Relabel_failing ->
              let acc = ref [] in
              for pred = initial_counts.Counts.npreds - 1 downto 0 do
                if initial_counts.Counts.f.(pred) > 0 then acc := pred :: !acc
              done;
              !acc)
    in
    let initial_scores = Hashtbl.create 64 in
    List.iter
      (fun pred ->
        Hashtbl.replace initial_scores pred (Scores.score ~confidence initial_counts ~pred))
      candidates;
    let rec loop acc candidates rank =
      let nfail = failing_count states in
      if nfail = 0 || candidates = [] || rank > max_selections then (List.rev acc, candidates)
      else begin
        let cts = counts_of_states ?pool meta states in
        let best =
          List.fold_left
            (fun best pred ->
              if not (Prune.keep ~confidence cts ~pred) then best
              else begin
                let sc = Scores.score ~confidence cts ~pred in
                match best with
                | None -> Some sc
                | Some b -> if Scores.compare_importance_desc sc b < 0 then Some sc else Some b
              end)
            None candidates
        in
        match best with
        | None -> (List.rev acc, candidates)
        | Some sc when sc.Scores.importance <= 0. -> (List.rev acc, candidates)
        | Some sc ->
            let pred = sc.Scores.pred in
            let runs_before = alive_count states in
            apply_discard discard states pred;
            let selection =
              {
                Eliminate.rank;
                pred;
                initial = Hashtbl.find initial_scores pred;
                effective = sc;
                runs_before;
                failures_before = nfail;
                runs_discarded = runs_before - alive_count states;
              }
            in
            let candidates = List.filter (fun p -> p <> pred) candidates in
            loop (selection :: acc) candidates (rank + 1)
      end
    in
    let selections, candidates_left = loop [] candidates 1 in
    {
      Eliminate.selections;
      runs_remaining = alive_count states;
      failures_remaining = failing_count states;
      candidates_remaining = List.length candidates_left;
    }
end

(* --- index-level wrappers (snapshot fetched/cached on the index) --- *)

let counts ?pool idx = Snapshot.counts (Index.snapshot ?pool idx)
let topk ?pool ?confidence ?k idx = Snap.topk ?confidence ?k (Index.snapshot ?pool idx)

let topk_f ?pool ?confidence ?k ~formula idx =
  Snap.topk_f ?confidence ?k ~formula (Index.snapshot ?pool idx)

let pred_detail ?pool ?confidence idx ~pred =
  Snap.pred_detail ?confidence (Index.snapshot ?pool idx) ~pred

let pred_score ?pool ?confidence idx ~pred ~formula =
  Snap.pred_score ?confidence (Index.snapshot ?pool idx) ~pred ~formula

let affinity ?pool ?confidence idx ~selected ~others =
  Snap.affinity ?pool ?confidence (Index.snapshot ?pool idx) ~selected ~others

let eliminate ?pool ?discard ?confidence ?max_selections ?candidates idx =
  Snap.eliminate ?pool ?discard ?confidence ?max_selections ?candidates
    (Index.snapshot ?pool idx)

(* --- co-occurrence (posting-list intersection; no snapshot needed) --- *)

let intersect_sorted a b =
  let n = ref 0 and i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      incr n;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  !n

let cooccurrence (idx : Index.t) ~a ~b =
  let npreds = idx.Index.meta.Dataset.npreds in
  if a < 0 || a >= npreds || b < 0 || b >= npreds then
    invalid_arg "Triage.cooccurrence: predicate out of range";
  Array.fold_left
    (fun acc sr -> acc + intersect_sorted (Segref.pred_posting sr a) (Segref.pred_posting sr b))
    0 (Index.all_segrefs idx)

(* --- full analysis --- *)

type analysis = {
  counts : Counts.t;
  retained : int list;
  elimination : Eliminate.result;
}

let analyze ?pool ?discard ?(confidence = 0.95) ?max_selections (idx : Index.t) =
  let snap = Index.snapshot ?pool idx in
  let cts = Snapshot.counts snap in
  let retained = Prune.retained ~confidence cts in
  let elimination =
    Snap.eliminate ?pool ?discard ~confidence ?max_selections ~candidates:retained snap
  in
  { counts = cts; retained; elimination }

let summary (idx : Index.t) (a : analysis) =
  {
    Analysis.runs = a.counts.Counts.num_f + a.counts.Counts.num_s;
    successful = a.counts.Counts.num_s;
    failing = a.counts.Counts.num_f;
    sites = idx.Index.meta.Dataset.nsites;
    initial_preds = idx.Index.meta.Dataset.npreds;
    retained_preds = List.length a.retained;
    selected_preds = List.length a.elimination.Eliminate.selections;
  }
