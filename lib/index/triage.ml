open Sbi_runtime
open Sbi_ingest
open Sbi_core

let all_segments (idx : Index.t) =
  let segs = Array.to_list idx.Index.segments in
  match Index.tail_segment idx with Some tail -> segs @ [ tail ] | None -> segs

let counts (idx : Index.t) =
  let acc = Aggregator.of_meta idx.Index.meta in
  Array.iter (fun a -> Aggregator.merge_into ~into:acc a) idx.Index.seg_aggs;
  Aggregator.merge_into ~into:acc (Index.tail_aggregator idx);
  Aggregator.to_counts acc

let topk ?confidence ?(k = 10) idx =
  let retained = Prune.retained_scores ?confidence (counts idx) in
  Sbi_util.Topk.top ~k
    ~compare:(fun a b -> Scores.compare_importance_desc b a)
    retained

let pred_detail ?confidence (idx : Index.t) ~pred =
  if pred < 0 || pred >= idx.Index.meta.Dataset.npreds then
    invalid_arg (Printf.sprintf "Triage.pred_detail: predicate %d out of range" pred);
  Scores.score ?confidence (counts idx) ~pred

let intersect_sorted a b =
  let n = ref 0 and i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      incr n;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  !n

let cooccurrence (idx : Index.t) ~a ~b =
  let npreds = idx.Index.meta.Dataset.npreds in
  if a < 0 || a >= npreds || b < 0 || b >= npreds then
    invalid_arg "Triage.cooccurrence: predicate out of range";
  List.fold_left
    (fun acc (seg : Segment.t) ->
      acc + intersect_sorted seg.Segment.pred_true.(a) seg.Segment.pred_true.(b))
    0 (all_segments idx)

(* --- run-subset counting over bitset states --- *)

type seg_state = { seg : Segment.t; alive : Bitset.t; failing : Bitset.t }

let fresh_states segs =
  List.map
    (fun (seg : Segment.t) ->
      {
        seg;
        alive = Bitset.full seg.Segment.nruns;
        failing = Bitset.copy seg.Segment.failing;
      })
    segs

(* Counts over the current alive runs with current outcomes — the exact
   quantities Counts.compute extracts from the corresponding filtered /
   relabeled dataset. *)
let counts_of_states (meta : Dataset.t) states =
  let npreds = meta.Dataset.npreds and nsites = meta.Dataset.nsites in
  let f = Array.make npreds 0 and s = Array.make npreds 0 in
  let f_obs_site = Array.make (max nsites 1) 0 and s_obs_site = Array.make (max nsites 1) 0 in
  let num_f = ref 0 and num_s = ref 0 in
  List.iter
    (fun st ->
      let nf = Bitset.count_and st.alive st.failing in
      num_f := !num_f + nf;
      num_s := !num_s + (Bitset.count st.alive - nf);
      let split counter_f counter_s postings =
        Array.iteri
          (fun i posting ->
            Array.iter
              (fun pos ->
                if Bitset.get st.alive pos then
                  if Bitset.get st.failing pos then counter_f.(i) <- counter_f.(i) + 1
                  else counter_s.(i) <- counter_s.(i) + 1)
              posting)
          postings
      in
      split f_obs_site s_obs_site st.seg.Segment.site_obs;
      split f s st.seg.Segment.pred_true)
    states;
  {
    Counts.npreds;
    f;
    s;
    f_obs = Array.init npreds (fun p -> f_obs_site.(meta.Dataset.pred_site.(p)));
    s_obs = Array.init npreds (fun p -> s_obs_site.(meta.Dataset.pred_site.(p)));
    num_f = !num_f;
    num_s = !num_s;
  }

let alive_count states = List.fold_left (fun acc st -> acc + Bitset.count st.alive) 0 states

let failing_count states =
  List.fold_left (fun acc st -> acc + Bitset.count_and st.alive st.failing) 0 states

(* --- affinity --- *)

let affinity ?(confidence = 0.95) (idx : Index.t) ~selected ~others =
  let counts_before = counts idx in
  let states_without =
    List.map
      (fun (seg : Segment.t) ->
        let alive = Bitset.full seg.Segment.nruns in
        Array.iter (Bitset.clear alive) seg.Segment.pred_true.(selected);
        { seg; alive; failing = Bitset.copy seg.Segment.failing })
      (all_segments idx)
  in
  let counts_after = counts_of_states idx.Index.meta states_without in
  let entries =
    List.filter_map
      (fun pred ->
        if pred = selected then None
        else begin
          let before = (Scores.score ~confidence counts_before ~pred).Scores.importance in
          let after = (Scores.score ~confidence counts_after ~pred).Scores.importance in
          Some
            {
              Affinity.pred;
              importance_before = before;
              importance_after = after;
              drop = before -. after;
            }
        end)
      others
  in
  List.sort
    (fun (a : Affinity.entry) (b : Affinity.entry) ->
      match compare b.Affinity.drop a.Affinity.drop with
      | 0 -> compare a.Affinity.pred b.Affinity.pred
      | n -> n)
    entries

(* --- iterative elimination --- *)

let apply_discard discard states pred =
  List.iter
    (fun st ->
      let posting = st.seg.Segment.pred_true.(pred) in
      match discard with
      | Eliminate.Discard_all_true -> Array.iter (Bitset.clear st.alive) posting
      | Eliminate.Discard_failing_true ->
          Array.iter
            (fun pos -> if Bitset.get st.failing pos then Bitset.clear st.alive pos)
            posting
      | Eliminate.Relabel_failing ->
          Array.iter
            (fun pos ->
              if Bitset.get st.alive pos && Bitset.get st.failing pos then
                Bitset.clear st.failing pos)
            posting)
    states

let eliminate ?(discard = Eliminate.Discard_all_true) ?(confidence = 0.95)
    ?(max_selections = 40) ?candidates (idx : Index.t) =
  let states = fresh_states (all_segments idx) in
  let initial_counts = counts_of_states idx.Index.meta states in
  let candidates =
    match candidates with
    | Some c -> c
    | None -> (
        match discard with
        | Eliminate.Discard_all_true -> Prune.retained ~confidence initial_counts
        | Eliminate.Discard_failing_true | Eliminate.Relabel_failing ->
            let acc = ref [] in
            for pred = initial_counts.Counts.npreds - 1 downto 0 do
              if initial_counts.Counts.f.(pred) > 0 then acc := pred :: !acc
            done;
            !acc)
  in
  let initial_scores = Hashtbl.create 64 in
  List.iter
    (fun pred ->
      Hashtbl.replace initial_scores pred (Scores.score ~confidence initial_counts ~pred))
    candidates;
  let rec loop acc candidates rank =
    let nfail = failing_count states in
    if nfail = 0 || candidates = [] || rank > max_selections then (List.rev acc, candidates)
    else begin
      let cts = counts_of_states idx.Index.meta states in
      let best =
        List.fold_left
          (fun best pred ->
            if not (Prune.keep ~confidence cts ~pred) then best
            else begin
              let sc = Scores.score ~confidence cts ~pred in
              match best with
              | None -> Some sc
              | Some b -> if Scores.compare_importance_desc sc b < 0 then Some sc else Some b
            end)
          None candidates
      in
      match best with
      | None -> (List.rev acc, candidates)
      | Some sc when sc.Scores.importance <= 0. -> (List.rev acc, candidates)
      | Some sc ->
          let pred = sc.Scores.pred in
          let runs_before = alive_count states in
          apply_discard discard states pred;
          let selection =
            {
              Eliminate.rank;
              pred;
              initial = Hashtbl.find initial_scores pred;
              effective = sc;
              runs_before;
              failures_before = nfail;
              runs_discarded = runs_before - alive_count states;
            }
          in
          let candidates = List.filter (fun p -> p <> pred) candidates in
          loop (selection :: acc) candidates (rank + 1)
    end
  in
  let selections, candidates_left = loop [] candidates 1 in
  {
    Eliminate.selections;
    runs_remaining = alive_count states;
    failures_remaining = failing_count states;
    candidates_remaining = List.length candidates_left;
  }

type analysis = {
  counts : Counts.t;
  retained : int list;
  elimination : Eliminate.result;
}

let analyze ?discard ?(confidence = 0.95) ?max_selections (idx : Index.t) =
  let cts = counts idx in
  let retained = Prune.retained ~confidence cts in
  let elimination = eliminate ?discard ~confidence ?max_selections ~candidates:retained idx in
  { counts = cts; retained; elimination }

let summary (idx : Index.t) (a : analysis) =
  {
    Analysis.runs = a.counts.Counts.num_f + a.counts.Counts.num_s;
    successful = a.counts.Counts.num_s;
    failing = a.counts.Counts.num_f;
    sites = idx.Index.meta.Dataset.nsites;
    initial_preds = idx.Index.meta.Dataset.npreds;
    retained_preds = List.length a.retained;
    selected_preds = List.length a.elimination.Eliminate.selections;
  }
