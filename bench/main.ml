(* Benchmark harness: one Bechamel benchmark per paper table (the analysis
   step that regenerates the table from collected feedback reports), plus
   micro-benchmarks of the statistical core and the collection runtime.

   After timing, the harness prints each regenerated table so a single
   `dune exec bench/main.exe` both measures and reproduces the paper's
   results (at reduced run counts; use bin/cbi.exe --runs 32000 for
   paper-scale populations). *)

open Bechamel
open Toolkit
open Sbi_experiments

let bench_runs =
  match Sys.getenv_opt "SBI_BENCH_RUNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

let bench_train =
  match Sys.getenv_opt "SBI_BENCH_TRAIN" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 80)
  | None -> 80

let config =
  {
    Harness.seed = 42;
    nruns = Some bench_runs;
    sampling = Harness.Adaptive bench_train;
    confidence = 0.95;
  }

(* --- one-time setup: collect every study's bundle --- *)

let bundles =
  lazy
    (List.map
       (fun study ->
         Printf.eprintf "[bench] collecting %s (%d runs)...\n%!"
           study.Sbi_corpus.Study.name bench_runs;
         (study.Sbi_corpus.Study.name, Harness.collect_study ~config study))
       Sbi_corpus.Corpus.all)

let bundle name = List.assoc name (Lazy.force bundles)
let moss () = bundle "mossim"

let all_rows () =
  List.map (fun (_, b) -> (b, Harness.analyze b)) (Lazy.force bundles)

(* --- per-table benchmarks --- *)

let table_tests () =
  let moss = moss () in
  let rows = all_rows () in
  [
    Test.make ~name:"table1:ranking-strategies" (Staged.stage (fun () -> Table1.render ~top:8 moss));
    Test.make ~name:"table2:summary-statistics" (Staged.stage (fun () -> Table2.render rows));
    Test.make ~name:"table3:moss-elimination" (Staged.stage (fun () -> Table3.render moss));
    Test.make ~name:"table4:ccrypt-predictors"
      (Staged.stage (fun () ->
           Predictor_table.render ~title:"Table 4" (bundle "ccryptim")));
    Test.make ~name:"table5:bc-predictors"
      (Staged.stage (fun () -> Predictor_table.render ~title:"Table 5" (bundle "bcim")));
    Test.make ~name:"table6:exif-predictors"
      (Staged.stage (fun () -> Predictor_table.render ~title:"Table 6" (bundle "exifim")));
    Test.make ~name:"table7:rhythmbox-predictors"
      (Staged.stage (fun () -> Predictor_table.render ~title:"Table 7" (bundle "rhythmim")));
    Test.make ~name:"table8:runs-needed" (Staged.stage (fun () -> Table8.render rows));
    Test.make ~name:"table9:logistic-regression" (Staged.stage (fun () -> Table9.render moss));
    Test.make ~name:"ablation:discard-proposals" (Staged.stage (fun () -> Ablation.render moss));
    Test.make ~name:"stack-study" (Staged.stage (fun () -> Stack_study.render rows));
  ]

(* --- statistical-core micro-benchmarks --- *)

let core_tests () =
  let moss = moss () in
  let ds = moss.Harness.dataset in
  let counts = Sbi_core.Counts.compute ds in
  let retained = Sbi_core.Prune.retained counts in
  let selected = match retained with p :: _ -> p | [] -> 0 in
  [
    Test.make ~name:"core:counts" (Staged.stage (fun () -> Sbi_core.Counts.compute ds));
    Test.make ~name:"core:score-all" (Staged.stage (fun () -> Sbi_core.Scores.score_all counts));
    Test.make ~name:"core:prune" (Staged.stage (fun () -> Sbi_core.Prune.retained counts));
    Test.make ~name:"core:eliminate"
      (Staged.stage (fun () -> Sbi_core.Eliminate.run ~candidates:retained ds));
    Test.make ~name:"core:affinity"
      (Staged.stage (fun () -> Sbi_core.Affinity.list ds ~selected ~others:retained));
    Test.make ~name:"core:logreg-train" (Staged.stage (fun () -> Sbi_logreg.Logreg.train ds));
  ]

(* --- runtime micro-benchmarks --- *)

let runtime_tests () =
  let study = Sbi_corpus.Corpus.mossim in
  let moss = moss () in
  let t = moss.Harness.transform in
  let spec_sampled =
    Sbi_runtime.Collect.make_spec ~transform:t ~plan:moss.Harness.plan
      ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:1 ~run)
      ()
  in
  let spec_full =
    Sbi_runtime.Collect.make_spec ~transform:t ~plan:Sbi_instrument.Sampler.Always
      ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:1 ~run)
      ()
  in
  let sampler =
    Sbi_instrument.Sampler.create ~nsites:(Sbi_instrument.Transform.num_sites t)
      moss.Harness.plan
  in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let compiled = Sbi_lang.Vm.compile t.Sbi_instrument.Transform.prog in
  [
    Test.make ~name:"run:bytecode-vm"
      (Staged.stage (fun () ->
           let args = study.Sbi_corpus.Study.gen_input ~seed:1 ~run:(next () mod 1000) in
           Sbi_lang.Vm.run_compiled compiled
             { Sbi_lang.Interp.default_config with Sbi_lang.Interp.args }));
    Test.make ~name:"run:uninstrumented"
      (Staged.stage (fun () ->
           Sbi_runtime.Collect.run_uninstrumented spec_sampled ~run_index:(next () mod 1000)));
    Test.make ~name:"run:sampled-nonuniform"
      (Staged.stage (fun () ->
           Sbi_runtime.Collect.run_one spec_sampled ~sampler ~run_index:(next () mod 1000)));
    Test.make ~name:"run:fully-observed"
      (Staged.stage (fun () ->
           Sbi_runtime.Collect.run_one spec_full ~sampler ~run_index:(next () mod 1000)));
    Test.make ~name:"sampler:coin-flip"
      (Staged.stage (fun () ->
           for site = 0 to 99 do
             ignore (Sbi_instrument.Sampler.should_sample sampler site)
           done));
  ]

(* --- ingestion-pipeline micro-benchmarks --- *)

let with_temp_log f =
  let dir = Filename.temp_file "sbi_bench_log" "" in
  Sys.remove dir;
  let r = f dir in
  if Sys.file_exists dir then begin
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Sys.rmdir dir
  end;
  r

let ingest_tests () =
  let moss = moss () in
  let ds = moss.Harness.dataset in
  let encoded = Array.map Sbi_ingest.Codec.encode ds.Sbi_runtime.Dataset.runs in
  let log_dir = Filename.temp_dir "sbi_bench" ".log" in
  ignore (Sbi_ingest.Shard_log.write_dataset ~dir:log_dir ~shards:4 ds);
  [
    Test.make ~name:"codec:encode-corpus"
      (Staged.stage (fun () -> Array.map Sbi_ingest.Codec.encode ds.Sbi_runtime.Dataset.runs));
    Test.make ~name:"codec:decode-corpus"
      (Staged.stage (fun () -> Array.map Sbi_ingest.Codec.decode encoded));
    Test.make ~name:"ingest:write-shard-log"
      (Staged.stage (fun () ->
           with_temp_log (fun dir -> Sbi_ingest.Shard_log.write_dataset ~dir ~shards:4 ds)));
    Test.make ~name:"ingest:stream-aggregate"
      (Staged.stage (fun () -> Sbi_ingest.Aggregator.of_log ~dir:log_dir));
    Test.make ~name:"ingest:read-all"
      (Staged.stage (fun () -> Sbi_ingest.Shard_log.read_all ~dir:log_dir));
  ]

(* Parallel vs. sequential collection is a one-shot wall-clock comparison
   (a bechamel quota would re-collect the corpus dozens of times). *)
let print_collection_scaling () =
  let study = Sbi_corpus.Corpus.mossim in
  let moss = moss () in
  let spec =
    Sbi_runtime.Collect.make_spec ~transform:moss.Harness.transform ~plan:moss.Harness.plan
      ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:1 ~run)
      ()
  in
  let nruns = bench_runs in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, seq_dt = time (fun () -> Sbi_runtime.Collect.collect ~seed:7 spec ~nruns) in
  let domains = Sbi_ingest.Par_collect.default_domains () in
  let par, par_dt =
    time (fun () -> Sbi_ingest.Par_collect.collect ~seed:7 ~domains spec ~nruns)
  in
  let identical =
    Array.for_all2
      (fun (a : Sbi_runtime.Report.t) (b : Sbi_runtime.Report.t) -> a = b)
      seq.Sbi_runtime.Dataset.runs par.Sbi_runtime.Dataset.runs
  in
  Printf.printf
    "collection scaling (%d runs): sequential %.2fs (%.0f reports/s) | %d domain(s) %.2fs \
     (%.0f reports/s) | speedup %.2fx | identical datasets: %b\n"
    nruns seq_dt
    (float_of_int nruns /. Float.max seq_dt 1e-9)
    domains par_dt
    (float_of_int nruns /. Float.max par_dt 1e-9)
    (seq_dt /. Float.max par_dt 1e-9)
    identical

(* --- run and report --- *)

let run_benchmarks tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"sbi" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let human_time ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      rows := (name, est, r2) :: !rows)
    results;
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  let tab =
    Sbi_util.Texttab.create ~title:"Benchmark results (time per regeneration)"
      [
        ("benchmark", Sbi_util.Texttab.Left);
        ("time/run", Sbi_util.Texttab.Right);
        ("r2", Sbi_util.Texttab.Right);
      ]
  in
  List.iter
    (fun (name, est, r2) ->
      Sbi_util.Texttab.add_row tab [ name; human_time est; Printf.sprintf "%.3f" r2 ])
    sorted;
  print_string (Sbi_util.Texttab.render tab)

let print_tables () =
  print_endline "\n===== Regenerated paper tables (reduced run counts) =====\n";
  let moss = moss () in
  let rows = all_rows () in
  print_endline (Table1.render ~top:8 moss);
  print_endline (Table2.render rows);
  print_endline (Table3.render moss);
  print_endline
    (Predictor_table.render ~title:"Table 4: Predictors for CCRYPT (analogue)"
       (bundle "ccryptim"));
  print_endline
    (Predictor_table.render ~title:"Table 5: Predictors for BC (analogue)" (bundle "bcim"));
  print_endline
    (Predictor_table.render ~title:"Table 6: Predictors for EXIF (analogue)" (bundle "exifim"));
  print_endline
    (Predictor_table.render ~title:"Table 7: Predictors for RHYTHMBOX (analogue)"
       (bundle "rhythmim"));
  print_endline (Table8.render rows);
  print_endline (Table9.render moss);
  print_endline (Ablation.render moss);
  print_endline (Stack_study.render rows)

let () =
  Printf.printf "sbi benchmark harness: %d runs/study, adaptive training on %d runs\n%!"
    bench_runs bench_train;
  ignore (Lazy.force bundles);
  let tests = table_tests () @ core_tests () @ runtime_tests () @ ingest_tests () in
  Printf.eprintf "[bench] timing %d benchmarks...\n%!" (List.length tests);
  let results = run_benchmarks tests in
  print_results results;
  Printf.eprintf "[bench] timing parallel vs sequential collection...\n%!";
  print_collection_scaling ();
  print_tables ()
