(* Benchmark harness: one Bechamel benchmark per paper table (the analysis
   step that regenerates the table from collected feedback reports), plus
   micro-benchmarks of the statistical core and the collection runtime.

   After timing, the harness prints each regenerated table so a single
   `dune exec bench/main.exe` both measures and reproduces the paper's
   results (at reduced run counts; use bin/cbi.exe --runs 32000 for
   paper-scale populations). *)

open Bechamel
open Toolkit
open Sbi_experiments

let bench_runs =
  match Sys.getenv_opt "SBI_BENCH_RUNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300)
  | None -> 300

let bench_train =
  match Sys.getenv_opt "SBI_BENCH_TRAIN" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 80)
  | None -> 80

let config =
  {
    Harness.default_config with
    Harness.seed = 42;
    nruns = Some bench_runs;
    sampling = Harness.Adaptive bench_train;
    confidence = 0.95;
  }

(* --- one-time setup: collect every study's bundle --- *)

let bundles =
  lazy
    (List.map
       (fun study ->
         Printf.eprintf "[bench] collecting %s (%d runs)...\n%!"
           study.Sbi_corpus.Study.name bench_runs;
         (study.Sbi_corpus.Study.name, Harness.collect_study ~config study))
       Sbi_corpus.Corpus.all)

let bundle name = List.assoc name (Lazy.force bundles)
let moss () = bundle "mossim"

let all_rows () =
  List.map (fun (_, b) -> (b, Harness.analyze b)) (Lazy.force bundles)

(* --- per-table benchmarks --- *)

let table_tests () =
  let moss = moss () in
  let rows = all_rows () in
  [
    Test.make ~name:"table1:ranking-strategies" (Staged.stage (fun () -> Table1.render ~top:8 moss));
    Test.make ~name:"table2:summary-statistics" (Staged.stage (fun () -> Table2.render rows));
    Test.make ~name:"table3:moss-elimination" (Staged.stage (fun () -> Table3.render moss));
    Test.make ~name:"table4:ccrypt-predictors"
      (Staged.stage (fun () ->
           Predictor_table.render ~title:"Table 4" (bundle "ccryptim")));
    Test.make ~name:"table5:bc-predictors"
      (Staged.stage (fun () -> Predictor_table.render ~title:"Table 5" (bundle "bcim")));
    Test.make ~name:"table6:exif-predictors"
      (Staged.stage (fun () -> Predictor_table.render ~title:"Table 6" (bundle "exifim")));
    Test.make ~name:"table7:rhythmbox-predictors"
      (Staged.stage (fun () -> Predictor_table.render ~title:"Table 7" (bundle "rhythmim")));
    Test.make ~name:"table8:runs-needed" (Staged.stage (fun () -> Table8.render rows));
    Test.make ~name:"table9:logistic-regression" (Staged.stage (fun () -> Table9.render moss));
    Test.make ~name:"ablation:discard-proposals" (Staged.stage (fun () -> Ablation.render moss));
    Test.make ~name:"stack-study" (Staged.stage (fun () -> Stack_study.render rows));
  ]

(* --- statistical-core micro-benchmarks --- *)

let core_tests () =
  let moss = moss () in
  let ds = moss.Harness.dataset in
  let counts = Sbi_core.Counts.compute ds in
  let retained = Sbi_core.Prune.retained counts in
  let selected = match retained with p :: _ -> p | [] -> 0 in
  [
    Test.make ~name:"core:counts" (Staged.stage (fun () -> Sbi_core.Counts.compute ds));
    Test.make ~name:"core:score-all" (Staged.stage (fun () -> Sbi_core.Scores.score_all counts));
    Test.make ~name:"core:prune" (Staged.stage (fun () -> Sbi_core.Prune.retained counts));
    Test.make ~name:"core:eliminate"
      (Staged.stage (fun () -> Sbi_core.Eliminate.run ~candidates:retained ds));
    Test.make ~name:"core:affinity"
      (Staged.stage (fun () -> Sbi_core.Affinity.list ds ~selected ~others:retained));
    Test.make ~name:"core:logreg-train" (Staged.stage (fun () -> Sbi_logreg.Logreg.train ds));
  ]

(* --- runtime micro-benchmarks --- *)

let runtime_tests () =
  let study = Sbi_corpus.Corpus.mossim in
  let moss = moss () in
  let t = moss.Harness.transform in
  let spec_sampled =
    Sbi_runtime.Collect.make_spec ~transform:t ~plan:moss.Harness.plan
      ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:1 ~run)
      ()
  in
  let spec_full =
    Sbi_runtime.Collect.make_spec ~transform:t ~plan:Sbi_instrument.Sampler.Always
      ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:1 ~run)
      ()
  in
  let sampler =
    Sbi_instrument.Sampler.create ~nsites:(Sbi_instrument.Transform.num_sites t)
      moss.Harness.plan
  in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let compiled = Sbi_lang.Vm.compile t.Sbi_instrument.Transform.prog in
  [
    Test.make ~name:"run:bytecode-vm"
      (Staged.stage (fun () ->
           let args = study.Sbi_corpus.Study.gen_input ~seed:1 ~run:(next () mod 1000) in
           Sbi_lang.Vm.run_compiled compiled
             { Sbi_lang.Interp.default_config with Sbi_lang.Interp.args }));
    Test.make ~name:"run:uninstrumented"
      (Staged.stage (fun () ->
           Sbi_runtime.Collect.run_uninstrumented spec_sampled ~run_index:(next () mod 1000)));
    Test.make ~name:"run:sampled-nonuniform"
      (Staged.stage (fun () ->
           Sbi_runtime.Collect.run_one spec_sampled ~sampler ~run_index:(next () mod 1000)));
    Test.make ~name:"run:fully-observed"
      (Staged.stage (fun () ->
           Sbi_runtime.Collect.run_one spec_full ~sampler ~run_index:(next () mod 1000)));
    Test.make ~name:"sampler:coin-flip"
      (Staged.stage (fun () ->
           for site = 0 to 99 do
             ignore (Sbi_instrument.Sampler.should_sample sampler site)
           done));
  ]

(* --- ingestion-pipeline micro-benchmarks --- *)

let with_temp_log f =
  let dir = Filename.temp_file "sbi_bench_log" "" in
  Sys.remove dir;
  let r = f dir in
  if Sys.file_exists dir then begin
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Sys.rmdir dir
  end;
  r

let ingest_tests () =
  let moss = moss () in
  let ds = moss.Harness.dataset in
  let encoded = Array.map Sbi_ingest.Codec.encode ds.Sbi_runtime.Dataset.runs in
  let log_dir = Filename.temp_dir "sbi_bench" ".log" in
  ignore (Sbi_ingest.Shard_log.write_dataset ~dir:log_dir ~shards:4 ds);
  [
    Test.make ~name:"codec:encode-corpus"
      (Staged.stage (fun () -> Array.map Sbi_ingest.Codec.encode ds.Sbi_runtime.Dataset.runs));
    Test.make ~name:"codec:decode-corpus"
      (Staged.stage (fun () -> Array.map Sbi_ingest.Codec.decode encoded));
    Test.make ~name:"ingest:write-shard-log"
      (Staged.stage (fun () ->
           with_temp_log (fun dir -> Sbi_ingest.Shard_log.write_dataset ~dir ~shards:4 ds)));
    Test.make ~name:"ingest:stream-aggregate"
      (Staged.stage (fun () -> Sbi_ingest.Aggregator.of_log ~dir:log_dir));
    Test.make ~name:"ingest:read-all"
      (Staged.stage (fun () -> Sbi_ingest.Shard_log.read_all ~dir:log_dir));
  ]

(* --- predicate-index micro-benchmarks --- *)

let index_tests () =
  let moss = moss () in
  let ds = moss.Harness.dataset in
  let log_dir = Filename.temp_dir "sbi_bench" ".log" in
  ignore (Sbi_ingest.Shard_log.write_dataset ~dir:log_dir ~shards:4 ds);
  let idx_dir = Filename.temp_dir "sbi_bench" ".idx" in
  Array.iter (fun n -> Sys.remove (Filename.concat idx_dir n)) (Sys.readdir idx_dir);
  ignore (Sbi_index.Index.build ~log:log_dir ~dir:idx_dir ());
  let idx = Sbi_index.Index.open_ ~dir:idx_dir in
  let counts = Sbi_core.Counts.compute ds in
  let retained = Sbi_core.Prune.retained counts in
  let selected = match retained with p :: _ -> p | [] -> 0 in
  let other = match retained with _ :: p :: _ -> p | _ -> selected in
  (* the naive co-occurrence rescan the posting-list intersection replaces *)
  let cooccur_rescan () =
    Array.fold_left
      (fun acc r ->
        if Sbi_runtime.Report.is_true r selected && Sbi_runtime.Report.is_true r other then
          acc + 1
        else acc)
      0 ds.Sbi_runtime.Dataset.runs
  in
  [
    Test.make ~name:"index:open" (Staged.stage (fun () -> Sbi_index.Index.open_ ~dir:idx_dir));
    Test.make ~name:"index:counts-merge" (Staged.stage (fun () -> Sbi_index.Triage.counts idx));
    Test.make ~name:"index:topk" (Staged.stage (fun () -> Sbi_index.Triage.topk ~k:10 idx));
    Test.make ~name:"index:pred-detail"
      (Staged.stage (fun () -> Sbi_index.Triage.pred_detail idx ~pred:selected));
    Test.make ~name:"index:affinity"
      (Staged.stage (fun () -> Sbi_index.Triage.affinity idx ~selected ~others:retained));
    Test.make ~name:"index:cooccur-postings"
      (Staged.stage (fun () -> Sbi_index.Triage.cooccurrence idx ~a:selected ~b:other));
    Test.make ~name:"index:cooccur-rescan" (Staged.stage cooccur_rescan);
  ]

(* Parallel vs. sequential collection is a one-shot wall-clock comparison
   (a bechamel quota would re-collect the corpus dozens of times). *)
let print_collection_scaling () =
  let study = Sbi_corpus.Corpus.mossim in
  let moss = moss () in
  let spec =
    Sbi_runtime.Collect.make_spec ~transform:moss.Harness.transform ~plan:moss.Harness.plan
      ~gen_input:(fun run -> study.Sbi_corpus.Study.gen_input ~seed:1 ~run)
      ()
  in
  let nruns = bench_runs in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, seq_dt = time (fun () -> Sbi_runtime.Collect.collect ~seed:7 spec ~nruns) in
  let domains = Sbi_ingest.Par_collect.default_domains () in
  let par, par_dt =
    time (fun () -> Sbi_ingest.Par_collect.collect ~seed:7 ~domains spec ~nruns)
  in
  let identical =
    Array.for_all2
      (fun (a : Sbi_runtime.Report.t) (b : Sbi_runtime.Report.t) -> a = b)
      seq.Sbi_runtime.Dataset.runs par.Sbi_runtime.Dataset.runs
  in
  Printf.printf
    "collection scaling (%d runs): sequential %.2fs (%.0f reports/s) | %d domain(s) %.2fs \
     (%.0f reports/s) | speedup %.2fx | identical datasets: %b\n"
    nruns seq_dt
    (float_of_int nruns /. Float.max seq_dt 1e-9)
    domains par_dt
    (float_of_int nruns /. Float.max par_dt 1e-9)
    (seq_dt /. Float.max par_dt 1e-9)
    identical

(* Index build throughput and indexed top-k vs. full-rescan streaming on a
   synthetic >= 10k-run corpus: one-shot wall-clock numbers (building the
   corpus inside a bechamel quota would dominate the measurement). *)

let synth_nruns =
  match Sys.getenv_opt "SBI_BENCH_INDEX_RUNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 10_000)
  | None -> 10_000

let synth_report st ~nsites ~npreds ~pred_site id =
  let obs_mask = Array.make nsites false in
  let obs = ref [] and preds = ref [] in
  for site = nsites - 1 downto 0 do
    if Random.State.float st 1.0 < 0.3 then begin
      obs_mask.(site) <- true;
      obs := site :: !obs
    end
  done;
  let observed = Array.of_list !obs in
  for p = npreds - 1 downto 0 do
    if obs_mask.(pred_site.(p)) && Random.State.float st 1.0 < 0.15 then preds := p :: !preds
  done;
  let true_preds = Array.of_list !preds in
  let buggy = Array.exists (fun p -> p = 17) true_preds in
  let failing =
    Random.State.float st 1.0 < if buggy then 0.9 else 0.03
  in
  {
    Sbi_runtime.Report.run_id = id;
    outcome = (if failing then Sbi_runtime.Report.Failure else Sbi_runtime.Report.Success);
    observed_sites = observed;
    true_preds;
    true_counts = Array.map (fun _ -> 1 + Random.State.int st 4) true_preds;
    bugs = (if buggy && failing then [| 0 |] else [||]);
    crash_sig = (if failing then Some "synth<crash" else None);
  }

(* Shared synthetic-corpus context: shard log + index + the raw reports
   (kept so the parallel sections can materialize the reference dataset). *)
type synth_ctx = {
  sy_nruns : int;
  sy_shards : int;
  sy_log_dir : string;
  sy_idx_dir : string;
  sy_reports : Sbi_runtime.Report.t array;
  sy_meta : Sbi_runtime.Dataset.t;
  sy_build_dt : float;
  sy_build_stats : Sbi_index.Index.build_stats;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let connect_exn addr =
  match Sbi_serve.Client.connect addr with
  | Ok c -> c
  | Error e -> failwith ("bench connect failed: " ^ e)

let build_synth_ctx ~nruns =
  let nsites = 120 and npreds = 360 in
  let pred_site = Array.init npreds (fun p -> p / 3) in
  let meta = Sbi_runtime.Dataset.of_tables ~nsites ~npreds ~pred_site [||] in
  let st = Random.State.make [| 0x5b1 |] in
  let log_dir = Filename.temp_dir "sbi_bench" ".biglog" in
  Sbi_ingest.Shard_log.write_meta ~dir:log_dir meta;
  let shards = 4 in
  let writers =
    Array.init shards (fun shard -> Sbi_ingest.Shard_log.create_writer ~dir:log_dir ~shard ())
  in
  let reports = Array.init nruns (fun id -> synth_report st ~nsites ~npreds ~pred_site id) in
  Array.iteri (fun id r -> Sbi_ingest.Shard_log.append writers.(id mod shards) r) reports;
  Array.iter (fun w -> ignore (Sbi_ingest.Shard_log.close_writer w)) writers;
  let idx_dir = Filename.temp_dir "sbi_bench" ".bigidx" in
  Array.iter (fun n -> Sys.remove (Filename.concat idx_dir n)) (Sys.readdir idx_dir);
  let build_stats, build_dt = time (fun () -> Sbi_index.Index.build ~log:log_dir ~dir:idx_dir ()) in
  {
    sy_nruns = nruns;
    sy_shards = shards;
    sy_log_dir = log_dir;
    sy_idx_dir = idx_dir;
    sy_reports = reports;
    sy_meta = meta;
    sy_build_dt = build_dt;
    sy_build_stats = build_stats;
  }

(* Shard order interleaves run ids round-robin; the reference dataset must
   present runs in the order the merged index sees them. *)
let synth_dataset ctx =
  let by_shard =
    Array.init ctx.sy_shards (fun shard ->
        Array.of_list
          (List.filter (fun (r : Sbi_runtime.Report.t) -> r.Sbi_runtime.Report.run_id mod ctx.sy_shards = shard)
             (Array.to_list ctx.sy_reports)))
  in
  Sbi_runtime.Dataset.of_tables ~nsites:ctx.sy_meta.Sbi_runtime.Dataset.nsites
    ~npreds:ctx.sy_meta.Sbi_runtime.Dataset.npreds
    ~pred_site:ctx.sy_meta.Sbi_runtime.Dataset.pred_site
    (Array.concat (Array.to_list by_shard))

let print_index_scaling ctx =
  Printf.printf
    "index build (%d runs, %d shards): %.2fs (%.0f reports/s, %d segments, %.1f MB consumed)\n"
    ctx.sy_nruns ctx.sy_shards ctx.sy_build_dt
    (float_of_int ctx.sy_build_stats.Sbi_index.Index.records_indexed
    /. Float.max ctx.sy_build_dt 1e-9)
    ctx.sy_build_stats.Sbi_index.Index.segments_added
    (float_of_int ctx.sy_build_stats.Sbi_index.Index.bytes_consumed /. 1e6);
  let log_dir = ctx.sy_log_dir and idx_dir = ctx.sy_idx_dir in
  let idx, open_dt = time (fun () -> Sbi_index.Index.open_ ~dir:idx_dir) in
  (* what `cbi analyze-file --stream` does: rescan every shard, then rank *)
  let rescan_once () =
    let agg, _, _ = Sbi_ingest.Aggregator.of_log ~dir:log_dir in
    let retained = Sbi_core.Prune.retained_scores (Sbi_ingest.Aggregator.to_counts agg) in
    Array.sort Sbi_core.Scores.compare_importance_desc retained;
    retained
  in
  let rescan, rescan_dt = time rescan_once in
  let iters = 25 in
  let indexed, indexed_dt =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to iters do
          last := Sbi_index.Triage.topk ~k:10 idx
        done;
        !last)
  in
  let indexed_dt = indexed_dt /. float_of_int iters in
  let agree =
    List.for_all2
      (fun (a : Sbi_core.Scores.t) (b : Sbi_core.Scores.t) ->
        a.Sbi_core.Scores.pred = b.Sbi_core.Scores.pred)
      indexed
      (Array.to_list (Array.sub rescan 0 (min 10 (Array.length rescan))))
  in
  Printf.printf
    "top-k on %d runs: full rescan %.1f ms | indexed %.3f ms (+%.1f ms one-time open) | \
     speedup %.0fx | same ranking: %b\n"
    synth_nruns (rescan_dt *. 1e3) (indexed_dt *. 1e3) (open_dt *. 1e3)
    (rescan_dt /. Float.max indexed_dt 1e-9)
    agree;
  (* query latency through the server path: socket, framing, and locking *)
  let sock = Filename.temp_file "sbi_bench" ".sock" in
  Sys.remove sock;
  let config =
    { (Sbi_serve.Server.default_config (Sbi_serve.Wire.Unix_sock sock)) with
      Sbi_serve.Server.fsync = false }
  in
  let srv = Sbi_serve.Server.start config idx in
  let client = connect_exn (Sbi_serve.Wire.Unix_sock sock) in
  let nq = 200 in
  let lat = Array.make nq 0.0 in
  for i = 0 to nq - 1 do
    let t0 = Unix.gettimeofday () in
    (match Sbi_serve.Client.request client "topk 10" with
    | Ok _ -> ()
    | Error e -> failwith ("bench query failed: " ^ e));
    lat.(i) <- Unix.gettimeofday () -. t0
  done;
  Sbi_serve.Client.close client;
  Sbi_serve.Server.stop srv;
  Array.sort Float.compare lat;
  Printf.printf "query latency (topk 10 over unix socket, %d requests): p50 %.2f ms, p95 %.2f ms\n"
    nq
    (lat.(nq / 2) *. 1e3)
    (lat.(nq * 95 / 100) *. 1e3)

(* --- par:* sections: sequential vs parallel analysis, server throughput ---

   One-shot wall-clock numbers (a bechamel quota would rebuild pools and
   re-run full eliminations dozens of times).  Every parallel result is
   checked against the sequential one — and both against
   Sbi_core.Analysis.analyze on the materialized corpus — before a
   number is reported; a divergence is a hard failure in --par-check
   mode and a loud warning here. *)

let par_domain_counts = [ 1; 2; 4; 8 ]

let analysis_equal (a : Sbi_index.Triage.analysis) (b : Sbi_core.Analysis.t) =
  a.Sbi_index.Triage.counts = b.Sbi_core.Analysis.counts
  && a.Sbi_index.Triage.retained = b.Sbi_core.Analysis.retained
  && a.Sbi_index.Triage.elimination = b.Sbi_core.Analysis.elimination

(* Sequential vs parallel elimination (snapshot prebuilt so the numbers
   time the rescoring loop, not the one-time densification).  Returns
   ((name, ns) entries, all_identical). *)
let par_elimination_scaling ctx =
  let ds = synth_dataset ctx in
  let reference = Sbi_core.Analysis.analyze ds in
  let entries = ref [] and ok = ref true in
  let check name a =
    if not (analysis_equal a reference) then begin
      ok := false;
      Printf.printf "PAR DIVERGENCE: %s does not match Analysis.analyze\n%!" name
    end
  in
  let seq_idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
  ignore (Sbi_index.Index.snapshot seq_idx);
  let seq_res, seq_dt = time (fun () -> Sbi_index.Triage.analyze seq_idx) in
  check "sequential" seq_res;
  entries :=
    ("par:grain", float_of_int Sbi_index.Triage.rescore_grain)
    :: ("par:eliminate:seq", seq_dt *. 1e9)
    :: !entries;
  Printf.printf "elimination scaling (%d runs, %d preds, grain %d, %d hardware domain(s)):\n"
    ctx.sy_nruns ctx.sy_meta.Sbi_runtime.Dataset.npreds Sbi_index.Triage.rescore_grain
    (Sbi_par.Domain_pool.default_domains ());
  Printf.printf "  sequential          %8.1f ms\n" (seq_dt *. 1e3);
  List.iter
    (fun domains ->
      if domains > 1 then begin
        (* production behavior: the pool clamps to the hardware domain
           count, so oversubscribed requests degrade to fewer (or zero)
           workers instead of multiplying GC synchronization cost *)
        let pool = Sbi_par.Domain_pool.create ~domains () in
        Fun.protect
          ~finally:(fun () -> Sbi_par.Domain_pool.shutdown pool)
          (fun () ->
            let idx, par_open_dt =
              time (fun () -> Sbi_index.Index.open_par ~pool ~dir:ctx.sy_idx_dir)
            in
            let _, snap_dt = time (fun () -> Sbi_index.Index.snapshot ~pool idx) in
            let res, dt = time (fun () -> Sbi_index.Triage.analyze ~pool idx) in
            check (Printf.sprintf "%d domains" domains) res;
            let speedup = seq_dt /. Float.max dt 1e-9 in
            entries :=
              (Printf.sprintf "par:eliminate:d%d" domains, dt *. 1e9)
              :: (Printf.sprintf "par:eliminate:d%d:speedup" domains, speedup)
              :: (Printf.sprintf "par:open:d%d" domains, (par_open_dt +. snap_dt) *. 1e9)
              :: !entries;
            Printf.printf
              "  %d domains (eff %d)   %8.1f ms (%.2fx vs seq, open+snapshot %.1f ms)\n"
              domains (Sbi_par.Domain_pool.size pool) (dt *. 1e3) speedup
              ((par_open_dt +. snap_dt) *. 1e3))
      end)
    par_domain_counts;
  (List.rev !entries, !ok)

(* Server throughput at 1/2/4/8 domains: concurrent clients hammering the
   epoch-snapshot read path (topk + affinity, the pool-fanned query). *)
let par_server_scaling ctx =
  let entries = ref [] in
  Printf.printf "server throughput (%d runs, 4 clients):\n" ctx.sy_nruns;
  List.iter
    (fun domains ->
      let sock = Filename.temp_file "sbi_bench" ".sock" in
      Sys.remove sock;
      let config =
        {
          (Sbi_serve.Server.default_config (Sbi_serve.Wire.Unix_sock sock)) with
          Sbi_serve.Server.fsync = false;
          domains;
        }
      in
      let idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
      let srv = Sbi_serve.Server.start config idx in
      let nclients = 4 and per_client = 50 in
      let worker () =
        let client = connect_exn (Sbi_serve.Wire.Unix_sock sock) in
        for i = 0 to per_client - 1 do
          let req = if i mod 10 = 9 then "affinity 17 5" else "topk 10" in
          match Sbi_serve.Client.request client req with
          | Ok _ -> ()
          | Error e -> failwith ("bench query failed: " ^ e)
        done;
        Sbi_serve.Client.close client
      in
      let (), dt =
        time (fun () ->
            let threads = Array.init nclients (fun _ -> Thread.create worker ()) in
            Array.iter Thread.join threads)
      in
      Sbi_serve.Server.stop srv;
      let total = nclients * per_client in
      let ns_per_req = dt *. 1e9 /. float_of_int total in
      entries := (Printf.sprintf "par:serve:topk:d%d" domains, ns_per_req) :: !entries;
      Printf.printf "  %d domain(s)         %8.0f req/s (%d requests in %.2fs)\n" domains
        (float_of_int total /. Float.max dt 1e-9)
        total dt)
    par_domain_counts;
  List.rev !entries

(* --- ingest:* section: single-RPC vs batched group-commit ingest ---

   Both servers run with fsync on over a fresh ingest log, so these
   numbers price the durability contract, not just the wire.  The
   single path pays one round trip plus one inline fsync per report;
   the batched path amortizes both — 64-report ingest-batch requests
   from 4 concurrent clients, every commit window covered by a single
   group fsync.  Every report is validated against the corpus meta and
   every ack checked, so a rejected report is a hard bench failure. *)

let ingest_singles = 300
let ingest_batch_clients = 4
let ingest_batch_size = 64
let ingest_batches_per_client = 24

let ingest_throughput ctx =
  let meta = ctx.sy_meta in
  let nsites = meta.Sbi_runtime.Dataset.nsites
  and npreds = meta.Sbi_runtime.Dataset.npreds
  and pred_site = meta.Sbi_runtime.Dataset.pred_site in
  (* fresh valid reports with run ids past the corpus, one disjoint id
     range per seed so concurrent clients never collide *)
  let fresh_reports ~seed ~base n =
    let st = Random.State.make [| 0x1679; seed |] in
    Array.init n (fun i -> synth_report st ~nsites ~npreds ~pred_site (base + i))
  in
  let with_ingest_server ~group_commit_ms ~max_batch f =
    let sock = Filename.temp_file "sbi_bench" ".sock" in
    Sys.remove sock;
    let log_dir = Filename.temp_dir "sbi_bench" ".inglog" in
    Sbi_ingest.Shard_log.write_meta ~dir:log_dir meta;
    let config =
      {
        (Sbi_serve.Server.default_config (Sbi_serve.Wire.Unix_sock sock)) with
        Sbi_serve.Server.fsync = true;
        ingest_log = Some log_dir;
        group_commit_ms;
        max_batch;
      }
    in
    let idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
    let srv = Sbi_serve.Server.start config idx in
    Fun.protect
      ~finally:(fun () -> Sbi_serve.Server.stop srv)
      (fun () -> f (Sbi_serve.Wire.Unix_sock sock))
  in
  (* baseline: one client, one `ingest` RPC (and one inline fsync) per
     report — the only ingest path previous releases had *)
  let single_ns =
    with_ingest_server ~group_commit_ms:0. ~max_batch:512 (fun addr ->
        let reports = fresh_reports ~seed:0 ~base:ctx.sy_nruns ingest_singles in
        let client = connect_exn addr in
        let (), dt =
          time (fun () ->
              Array.iter
                (fun r ->
                  match
                    Sbi_serve.Client.request client
                      ("ingest " ^ Sbi_serve.B64.encode (Sbi_ingest.Codec.encode r))
                  with
                  | Ok _ -> ()
                  | Error e -> failwith ("bench ingest failed: " ^ e))
                reports)
        in
        Sbi_serve.Client.close client;
        dt *. 1e9 /. float_of_int ingest_singles)
  in
  (* batched: concurrent clients, 64-report ingest-batch requests, group
     commit windows covering every fsync *)
  let per_client = ingest_batches_per_client * ingest_batch_size in
  let batch_total = ingest_batch_clients * per_client in
  let batch_ns =
    with_ingest_server ~group_commit_ms:2.0 ~max_batch:256 (fun addr ->
        let chunks =
          Array.init ingest_batch_clients (fun w ->
              let reports =
                fresh_reports ~seed:(1 + w) ~base:(ctx.sy_nruns + (w * per_client)) per_client
              in
              Array.init ingest_batches_per_client (fun b ->
                  Array.to_list (Array.sub reports (b * ingest_batch_size) ingest_batch_size)))
        in
        let worker w =
          let client = connect_exn addr in
          Array.iter
            (fun chunk ->
              match Sbi_serve.Client.ingest_batch client chunk with
              | Ok statuses ->
                  List.iter
                    (function
                      | Ok _ -> ()
                      | Error e -> failwith ("bench batch report rejected: " ^ e))
                    statuses
              | Error e -> failwith ("bench ingest-batch failed: " ^ e))
            chunks.(w);
          Sbi_serve.Client.close client
        in
        let (), dt =
          time (fun () ->
              let threads = Array.init ingest_batch_clients (fun w -> Thread.create worker w) in
              Array.iter Thread.join threads)
        in
        dt *. 1e9 /. float_of_int batch_total)
  in
  Printf.printf
    "ingest throughput (fsync on): single-RPC %.0f reports/s | batched group-commit %.0f \
     reports/s (%d clients x %d-report batches) | %.1fx\n"
    (1e9 /. single_ns) (1e9 /. batch_ns) ingest_batch_clients ingest_batch_size
    (single_ns /. Float.max batch_ns 1e-9);
  [ ("ingest:single", single_ns); ("ingest:batch", batch_ns) ]

(* `bench/main.exe --ingest-check`: exit non-zero unless batched
   group-commit ingest beats the single-report RPC path by >= 10x at
   fsync=true — the payoff gate for the batched front end, wired to
   `make bench-check`. *)
let ingest_check () =
  Printf.printf "ingest-check: batched group-commit vs single-RPC ingest, fsync on\n%!";
  let ctx = build_synth_ctx ~nruns:2_000 in
  let entries = ingest_throughput ctx in
  let single = List.assoc "ingest:single" entries
  and batch = List.assoc "ingest:batch" entries in
  let ratio = single /. Float.max batch 1e-9 in
  if ratio >= 10.0 then begin
    Printf.printf "ingest-check OK: batched ingest %.1fx the single-RPC path (need >= 10x)\n"
      ratio;
    exit 0
  end
  else begin
    Printf.eprintf
      "ingest-check FAILED: batched ingest only %.1fx the single-RPC path (need >= 10x)\n"
      ratio;
    exit 1
  end

(* --- connection-scale front end: the event-loop acceptor ---

   conn:single — one connection pushing deep ingest batches: the
   per-connection ceiling of the wire + group-commit path.
   conn:fleet — [clients] connections ALL connected before any traffic
   flows (a connect barrier, so the server really faces that many
   concurrent peers), each pushing shallow batches.  Amortized
   per-report time should stay close to the single-connection number:
   the event loop makes connection count cheap.  --conn-check gates
   this at 1000 clients with zero dropped accepts. *)

let conn_single_batches = 64
let conn_single_batch_size = 64
let conn_fleet_batches = 2
let conn_fleet_batch_size = 32

let conn_throughput ?(clients = 200) ctx =
  let meta = ctx.sy_meta in
  let nsites = meta.Sbi_runtime.Dataset.nsites
  and npreds = meta.Sbi_runtime.Dataset.npreds
  and pred_site = meta.Sbi_runtime.Dataset.pred_site in
  let fresh_reports ~seed ~base n =
    let st = Random.State.make [| 0x2b11; seed |] in
    Array.init n (fun i -> synth_report st ~nsites ~npreds ~pred_site (base + i))
  in
  (* room for two fds per connection plus runway; on a squeezed fd limit
     the fleet narrows instead of failing *)
  let soft0, hard = Sbi_serve.Evloop.nofile_limit () in
  let want = (2 * clients) + 512 in
  if soft0 <> -1 && soft0 < want && (hard = -1 || hard >= want) then
    ignore (Sbi_serve.Evloop.set_nofile_limit want);
  let soft, _ = Sbi_serve.Evloop.nofile_limit () in
  let clients = if soft = -1 || soft >= want then clients else max 8 ((soft - 512) / 2) in
  let with_conn_server f =
    let sock = Filename.temp_file "sbi_bench" ".sock" in
    Sys.remove sock;
    let log_dir = Filename.temp_dir "sbi_bench" ".connlog" in
    Sbi_ingest.Shard_log.write_meta ~dir:log_dir meta;
    let config =
      {
        (Sbi_serve.Server.default_config (Sbi_serve.Wire.Unix_sock sock)) with
        Sbi_serve.Server.fsync = true;
        ingest_log = Some log_dir;
        group_commit_ms = 2.0;
        max_batch = 256;
        acceptors = 2;
        max_conns = clients + 64;
      }
    in
    let idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
    let srv = Sbi_serve.Server.start config idx in
    Fun.protect
      ~finally:(fun () -> Sbi_serve.Server.stop srv)
      (fun () -> f (Sbi_serve.Wire.Unix_sock sock))
  in
  let check_batch = function
    | Ok statuses ->
        List.iter
          (function
            | Ok _ -> () | Error e -> failwith ("conn bench report rejected: " ^ e))
          statuses
    | Error e -> failwith ("conn bench batch failed: " ^ e)
  in
  let single_total = conn_single_batches * conn_single_batch_size in
  let single_ns =
    with_conn_server (fun addr ->
        let reports =
          fresh_reports ~seed:0 ~base:(ctx.sy_nruns + 1_000_000) single_total
        in
        let client = connect_exn addr in
        let (), dt =
          time (fun () ->
              for b = 0 to conn_single_batches - 1 do
                let chunk =
                  Array.to_list
                    (Array.sub reports (b * conn_single_batch_size)
                       conn_single_batch_size)
                in
                check_batch (Sbi_serve.Client.ingest_batch client chunk)
              done)
        in
        Sbi_serve.Client.close client;
        dt *. 1e9 /. float_of_int single_total)
  in
  let per_client = conn_fleet_batches * conn_fleet_batch_size in
  let fleet_total = clients * per_client in
  let fleet_ns, dropped, fault_lines =
    with_conn_server (fun addr ->
        (* connect barrier over clients + the timing thread: traffic and
           the clock start only once the whole fleet is connected *)
        let bar_m = Mutex.create () and bar_cv = Condition.create () in
        let arrived = ref 0 in
        let parties = clients + 1 in
        let barrier () =
          Mutex.lock bar_m;
          incr arrived;
          if !arrived >= parties then Condition.broadcast bar_cv
          else
            while !arrived < parties do
              Condition.wait bar_cv bar_m
            done;
          Mutex.unlock bar_m
        in
        let failures = Atomic.make 0 in
        let worker w =
          match Sbi_serve.Client.connect addr with
          | Error _ ->
              Atomic.incr failures;
              barrier ()
          | Ok client ->
              barrier ();
              let reports =
                fresh_reports ~seed:(1 + w)
                  ~base:(ctx.sy_nruns + 2_000_000 + (w * per_client))
                  per_client
              in
              (try
                 for b = 0 to conn_fleet_batches - 1 do
                   let chunk =
                     Array.to_list
                       (Array.sub reports (b * conn_fleet_batch_size)
                          conn_fleet_batch_size)
                   in
                   match Sbi_serve.Client.ingest_batch client chunk with
                   | Ok statuses ->
                       List.iter
                         (function Ok _ -> () | Error _ -> Atomic.incr failures)
                         statuses
                   | Error _ -> Atomic.incr failures
                 done
               with _ -> Atomic.incr failures);
              Sbi_serve.Client.close client
        in
        let threads = Array.init clients (fun w -> Thread.create worker w) in
        let (), dt =
          time (fun () ->
              barrier ();
              Array.iter Thread.join threads)
        in
        (* a dropped accept or an admission rejection would show up here *)
        let faults =
          let prefixed p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
          let c = connect_exn addr in
          let lines =
            match Sbi_serve.Client.request c "stats" with
            | Ok (_, lines) ->
                List.filter
                  (fun l -> prefixed "fault.accept " l || prefixed "fault.overload " l)
                  lines
            | Error e -> [ "stats unavailable: " ^ e ]
          in
          Sbi_serve.Client.close c;
          lines
        in
        (dt *. 1e9 /. float_of_int fleet_total, Atomic.get failures, faults))
  in
  Printf.printf
    "conn front end (fsync on, group commit): single conn %.0f reports/s | %d-conn fleet \
     %.0f reports/s | fleet/single %.2fx | dropped %d%s\n"
    (1e9 /. single_ns) clients (1e9 /. fleet_ns)
    (single_ns /. Float.max fleet_ns 1e-9)
    dropped
    (match fault_lines with [] -> "" | ls -> " | " ^ String.concat ", " ls);
  ([ ("conn:single", single_ns); ("conn:fleet", fleet_ns) ], clients, dropped, fault_lines)

(* `bench/main.exe --conn-check`: exit non-zero unless 1000 concurrent
   connections are all served — zero dropped accepts, zero overload
   rejections — with batched throughput within 15% of a single
   connection.  The payoff gate for the event-loop acceptor, wired to
   `make bench-check`. *)
let conn_check () =
  Printf.printf "conn-check: 1000 concurrent connections vs one, batched ingest, fsync on\n%!";
  let ctx = build_synth_ctx ~nruns:2_000 in
  let entries, clients, dropped, fault_lines = conn_throughput ~clients:1000 ctx in
  let single = List.assoc "conn:single" entries
  and fleet = List.assoc "conn:fleet" entries in
  let ratio = single /. Float.max fleet 1e-9 in
  let ok = ref true in
  let gate what cond detail =
    if not cond then begin
      Printf.printf "  FAILED: %s (%s)\n%!" what detail;
      ok := false
    end
  in
  gate "fleet width" (clients >= 1000) (Printf.sprintf "%d clients (fd limit?)" clients);
  gate "zero dropped requests" (dropped = 0) (Printf.sprintf "%d failures" dropped);
  gate "zero accept faults / overload rejections" (fault_lines = [])
    (String.concat ", " fault_lines);
  gate "fleet throughput within 15% of single-connection" (ratio >= 0.85)
    (Printf.sprintf "%.2fx" ratio);
  if !ok then begin
    Printf.printf
      "conn-check OK: %d concurrent connections at %.2fx single-connection throughput, \
       nothing dropped\n"
      clients ratio;
    exit 0
  end
  else begin
    prerr_endline "conn-check FAILED: event-loop front end dropped or slowed connections";
    exit 1
  end

(* `bench/main.exe --par-check`: exit non-zero if any parallel result
   diverges from the sequential engine — wired to `make bench-check`. *)
let par_check () =
  let nruns = min synth_nruns 3_000 in
  Printf.printf "par-check: %d-run synthetic corpus, pools of 2 and 4 domains\n%!" nruns;
  let ctx = build_synth_ctx ~nruns in
  let ds = synth_dataset ctx in
  let ok = ref true in
  let check what cond =
    if cond then Printf.printf "  ok: %s\n%!" what
    else begin
      ok := false;
      Printf.printf "  DIVERGED: %s\n%!" what
    end
  in
  List.iter
    (fun domains ->
      (* clamp:false — the correctness property must exercise real
         cross-domain chunk claiming and stealing even on a host with
         fewer cores than the requested pool size *)
      let pool = Sbi_par.Domain_pool.create ~clamp:false ~domains () in
      Fun.protect
        ~finally:(fun () -> Sbi_par.Domain_pool.shutdown pool)
        (fun () ->
          let idx = Sbi_index.Index.open_par ~pool ~dir:ctx.sy_idx_dir in
          let seq_idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
          check
            (Printf.sprintf "topk (%d domains)" domains)
            (Sbi_index.Triage.topk ~pool ~k:20 idx = Sbi_index.Triage.topk ~k:20 seq_idx);
          List.iter
            (fun (discard, name) ->
              let par = Sbi_index.Triage.eliminate ~pool ~discard idx in
              let seq = Sbi_index.Triage.eliminate ~discard seq_idx in
              let reference = Sbi_core.Eliminate.run ~discard ds in
              check (Printf.sprintf "eliminate %s (%d domains)" name domains)
                (par = seq && par = reference))
            [
              (Sbi_core.Eliminate.Discard_all_true, "discard-all-true");
              (Sbi_core.Eliminate.Discard_failing_true, "discard-failing-true");
              (Sbi_core.Eliminate.Relabel_failing, "relabel-failing");
            ];
          let retained = Sbi_core.Prune.retained (Sbi_index.Triage.counts seq_idx) in
          check
            (Printf.sprintf "affinity (%d domains)" domains)
            (Sbi_index.Triage.affinity ~pool idx ~selected:17 ~others:retained
            = Sbi_index.Triage.affinity seq_idx ~selected:17 ~others:retained)))
    [ 2; 4 ];
  if !ok then begin
    Printf.printf "par-check OK: parallel results bit-identical to sequential\n";
    exit 0
  end
  else begin
    prerr_endline "par-check FAILED: parallel analysis diverged from sequential";
    exit 1
  end

(* --- fault:* section: fault-layer passthrough overhead ---

   Every durability path funnels its file I/O through Sbi_fault.Io;
   disabled (the default everywhere) the layer must be free.  A/B the
   hot read path (streaming log fold) and the full index build with (a)
   the default passthrough and (b) a quiet, never-firing injector
   attached — the layer's worst case — and gate the delta in
   --fault-check mode (par-check style, wired to `make fault-check`). *)

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let (), dt = time f in
    if dt < !best then best := dt
  done;
  !best

let fault_overhead ctx =
  let quiet = Sbi_fault.Io.faulty (Sbi_fault.Fault.create Sbi_fault.Fault.quiet) in
  let fold ?io () =
    ignore
      (Sbi_ingest.Shard_log.fold ?io ~dir:ctx.sy_log_dir ~init:0
         ~f:(fun acc _ -> acc + 1)
         ())
  in
  let build ?io () =
    let dir = Filename.temp_dir "sbi_bench" ".faultidx" in
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    ignore (Sbi_index.Index.build ?io ~log:ctx.sy_log_dir ~dir ());
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Unix.rmdir dir
  in
  let reps = 5 in
  let fold_plain = best_of reps (fun () -> fold ()) in
  let fold_quiet = best_of reps (fun () -> fold ~io:quiet ()) in
  let build_plain = best_of reps (fun () -> build ()) in
  let build_quiet = best_of reps (fun () -> build ~io:quiet ()) in
  let pct a b = 100. *. (b -. a) /. Float.max a 1e-9 in
  Printf.printf "fault-layer passthrough overhead (%d runs, best of %d):\n" ctx.sy_nruns reps;
  Printf.printf "  log fold     passthrough %8.1f ms | quiet injector %8.1f ms (%+.2f%%)\n"
    (fold_plain *. 1e3) (fold_quiet *. 1e3) (pct fold_plain fold_quiet);
  Printf.printf "  index build  passthrough %8.1f ms | quiet injector %8.1f ms (%+.2f%%)\n"
    (build_plain *. 1e3) (build_quiet *. 1e3)
    (pct build_plain build_quiet);
  ( [
      ("fault:fold:passthrough", fold_plain *. 1e9);
      ("fault:fold:quiet", fold_quiet *. 1e9);
      ("fault:build:passthrough", build_plain *. 1e9);
      ("fault:build:quiet", build_quiet *. 1e9);
    ],
    [ ("log fold", fold_plain, fold_quiet); ("index build", build_plain, build_quiet) ] )

(* `bench/main.exe --fault-check`: exit non-zero if attaching even a
   quiet injector costs more than the gate (2% plus a small noise floor)
   over the shipped passthrough path. *)
let fault_check () =
  let nruns = min synth_nruns 3_000 in
  Printf.printf "fault-check: %d-run synthetic corpus, passthrough vs quiet injector\n%!" nruns;
  let ctx = build_synth_ctx ~nruns in
  let _, pairs = fault_overhead ctx in
  let max_pct = 2.0 and slack_s = 2e-3 in
  let ok =
    List.for_all
      (fun (name, plain, quiet) ->
        let fine = quiet -. plain <= (plain *. max_pct /. 100.) +. slack_s in
        if not fine then
          Printf.printf "  OVERHEAD: %s %.1f ms -> %.1f ms exceeds %.0f%%\n%!" name
            (plain *. 1e3) (quiet *. 1e3) max_pct;
        fine)
      pairs
  in
  if ok then begin
    Printf.printf "fault-check OK: fault layer within %.0f%% (+noise floor) when disabled\n"
      max_pct;
    exit 0
  end
  else begin
    prerr_endline "fault-check FAILED: fault-injection layer adds measurable overhead";
    exit 1
  end

(* --- observability overhead ---

   A/B the instrumented hot paths with Sbi_obs enabled vs disabled:
   indexed top-k (spans + registry around triage/snapshot) and ingest
   append (sampled codec/log timers).  The delta is what the always-on
   observability layer costs; --obs-check gates it fault-check style. *)

let obs_overhead ctx =
  let idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
  (* warm the epoch-snapshot cache so the loop measures query-path
     instrumentation, not a one-off snapshot build *)
  ignore (Sbi_index.Index.snapshot idx);
  let topk () =
    for _ = 1 to 25 do
      ignore (Sbi_index.Triage.topk ~k:10 idx)
    done
  in
  let append () =
    let dir = Filename.temp_dir "sbi_bench" ".obslog" in
    Sbi_ingest.Shard_log.write_meta ~dir ctx.sy_meta;
    let w = Sbi_ingest.Shard_log.create_writer ~dir ~shard:0 () in
    Array.iter (Sbi_ingest.Shard_log.append w) ctx.sy_reports;
    ignore (Sbi_ingest.Shard_log.close_writer w);
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Unix.rmdir dir
  in
  let reps = 5 in
  let ab f =
    Sbi_obs.set_enabled false;
    let off = best_of reps f in
    Sbi_obs.set_enabled true;
    let on = best_of reps f in
    (on, off)
  in
  let topk_on, topk_off = ab topk in
  let append_on, append_off = ab append in
  let pct off on = 100. *. (on -. off) /. Float.max off 1e-9 in
  Printf.printf "observability overhead (%d runs, best of %d):\n" ctx.sy_nruns reps;
  Printf.printf "  indexed topk  uninstrumented %8.1f ms | instrumented %8.1f ms (%+.2f%%)\n"
    (topk_off *. 1e3) (topk_on *. 1e3) (pct topk_off topk_on);
  Printf.printf "  ingest append uninstrumented %8.1f ms | instrumented %8.1f ms (%+.2f%%)\n"
    (append_off *. 1e3) (append_on *. 1e3)
    (pct append_off append_on);
  ( [
      ("obs:topk:off", topk_off *. 1e9);
      ("obs:topk:on", topk_on *. 1e9);
      ("obs:ingest:off", append_off *. 1e9);
      ("obs:ingest:on", append_on *. 1e9);
    ],
    [ ("indexed topk", topk_off, topk_on); ("ingest append", append_off, append_on) ] )

(* `bench/main.exe --obs-check`: exit non-zero if the enabled
   observability layer costs more than the gate (2% plus a small noise
   floor) over the same paths with Sbi_obs disabled. *)
let obs_check () =
  let nruns = min synth_nruns 3_000 in
  Printf.printf "obs-check: %d-run synthetic corpus, instrumented vs disabled\n%!" nruns;
  let ctx = build_synth_ctx ~nruns in
  let _, pairs = obs_overhead ctx in
  let max_pct = 2.0 and slack_s = 2e-3 in
  let ok =
    List.for_all
      (fun (name, off, on) ->
        let fine = on -. off <= (off *. max_pct /. 100.) +. slack_s in
        if not fine then
          Printf.printf "  OVERHEAD: %s %.1f ms -> %.1f ms exceeds %.0f%%\n%!" name
            (off *. 1e3) (on *. 1e3) max_pct;
        fine)
      pairs
  in
  if ok then begin
    Printf.printf "obs-check OK: instrumentation within %.0f%% (+noise floor) of disabled\n"
      max_pct;
    exit 0
  end
  else begin
    prerr_endline "obs-check FAILED: observability layer adds measurable overhead";
    exit 1
  end

(* --- SBFL formula zoo ---

   Per-formula indexed top-k over the synthetic corpus (every formula
   re-folds the same snapshot-cached counter table — the deltas are pure
   scoring arithmetic), plus the dispatch overhead of the pluggable
   path: Triage.topk (hard-coded importance) vs Triage.topk_f with the
   importance formula fetched from the registry.  --sbfl-check gates the
   dispatch overhead fault-check style. *)

let sbfl_overhead ctx =
  let idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
  ignore (Sbi_index.Index.snapshot idx);
  let iters = 25 in
  let reps = 5 in
  let topk_hard () =
    for _ = 1 to iters do
      ignore (Sbi_index.Triage.topk ~k:10 idx)
    done
  in
  let topk_formula formula () =
    for _ = 1 to iters do
      ignore (Sbi_index.Triage.topk_f ~k:10 ~formula idx)
    done
  in
  (* the pluggable path must select the same predicates as the hard-coded
     one before its timing means anything *)
  let hard = Sbi_index.Triage.topk ~k:10 idx in
  let plugged = Sbi_index.Triage.topk_f ~k:10 ~formula:Sbi_sbfl.Formula.importance idx in
  let identical =
    List.length hard = List.length plugged
    && List.for_all2
         (fun (sc : Sbi_core.Scores.t) (e : Sbi_sbfl.Ranking.entry) ->
           sc.Sbi_core.Scores.pred = e.Sbi_sbfl.Ranking.pred
           && sc.Sbi_core.Scores.importance = e.Sbi_sbfl.Ranking.score)
         hard plugged
  in
  if not identical then
    Printf.printf "SBFL DIVERGENCE: topk_f importance does not match hard-coded topk\n%!";
  let hard_dt = best_of reps topk_hard in
  let dispatch_dt =
    best_of reps (topk_formula Sbi_sbfl.Formula.importance)
  in
  Printf.printf "sbfl dispatch overhead (%d runs, best of %d, %d topk/rep):\n" ctx.sy_nruns
    reps iters;
  Printf.printf
    "  topk hard-coded importance %8.1f ms | via formula registry %8.1f ms (%+.2f%%)\n"
    (hard_dt *. 1e3) (dispatch_dt *. 1e3)
    (100. *. (dispatch_dt -. hard_dt) /. Float.max hard_dt 1e-9);
  let entries = ref [ ("sbfl:topk:hardcoded", hard_dt *. 1e9) ] in
  List.iter
    (fun (fm : Sbi_sbfl.Formula.t) ->
      let dt = best_of reps (topk_formula fm) in
      entries := (Printf.sprintf "sbfl:topk:%s" fm.Sbi_sbfl.Formula.name, dt *. 1e9) :: !entries;
      Printf.printf "  topk %-26s %8.1f ms\n" fm.Sbi_sbfl.Formula.name (dt *. 1e3))
    (Sbi_sbfl.Registry.all ());
  (List.rev !entries, [ ("sbfl topk dispatch", hard_dt, dispatch_dt) ], identical)

(* `bench/main.exe --sbfl-check`: exit non-zero if ranking through the
   formula registry costs more than the gate (2% plus a small noise
   floor) over the hard-coded importance path, or selects different
   predicates. *)
let sbfl_check () =
  let nruns = min synth_nruns 3_000 in
  Printf.printf "sbfl-check: %d-run synthetic corpus, hard-coded vs pluggable ranking\n%!"
    nruns;
  let ctx = build_synth_ctx ~nruns in
  let _, pairs, identical = sbfl_overhead ctx in
  let max_pct = 2.0 and slack_s = 2e-3 in
  let ok =
    List.for_all
      (fun (name, hard, dispatch) ->
        let fine = dispatch -. hard <= (hard *. max_pct /. 100.) +. slack_s in
        if not fine then
          Printf.printf "  OVERHEAD: %s %.1f ms -> %.1f ms exceeds %.0f%%\n%!" name
            (hard *. 1e3) (dispatch *. 1e3) max_pct;
        fine)
      pairs
  in
  if ok && identical then begin
    Printf.printf "sbfl-check OK: formula dispatch within %.0f%% (+noise floor), rankings identical\n"
      max_pct;
    exit 0
  end
  else begin
    prerr_endline
      (if identical then "sbfl-check FAILED: formula dispatch adds measurable overhead"
       else "sbfl-check FAILED: pluggable importance ranking diverged from hard-coded path");
    exit 1
  end

(* --- million-run scale: tiered store, lazy open, compaction ---

   One-shot wall-clock measurements over a corpus streamed by
   {!Sbi_corpus.Synth} in waves (generate, then incrementally index, 16
   times), so the index accumulates one segment per shard per wave —
   the many-small-segments shape tiered compaction exists to fix.  The
   warm top-k number is the headline: on the lazy footer-indexed store
   it is pure aggregate arithmetic (no posting loads), so it must stay
   inside a fixed budget no matter how many runs are on disk. *)

let scale_runs =
  match Sys.getenv_opt "SBI_SCALE_RUNS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1_000_000)
  | None -> 1_000_000

let scale_budget_ms =
  match Sys.getenv_opt "SBI_SCALE_BUDGET_MS" with
  | Some s -> ( match float_of_string_opt s with Some f when f > 0. -> f | _ -> 10.)
  | None -> 10.

type scale_result = {
  sc_runs : int;
  sc_gen_s : float;
  sc_build_s : float;
  sc_open_s : float;
  sc_topk_cold_s : float;
  sc_topk_warm_s : float;  (** median of 50 repeated top-k calls *)
  sc_compact_s : float;
  sc_open_after_s : float;
  sc_topk_after_s : float;
  sc_segments_before : int;
  sc_segments_after : int;
  sc_bytes_before : int;
  sc_bytes_after : int;
  sc_identical : bool;  (** top-k bit-identical across compaction *)
  sc_fsck_clean : bool;
}

let median samples =
  let a = Array.copy samples in
  Array.sort compare a;
  a.(Array.length a / 2)

(* Bit-pattern fingerprint: equality means the compacted index produces
   the very same floats, not merely the same order. *)
let scale_sig scores =
  List.map
    (fun (sc : Sbi_core.Scores.t) ->
      ( sc.Sbi_core.Scores.pred,
        Int64.bits_of_float sc.Sbi_core.Scores.importance,
        sc.Sbi_core.Scores.f,
        sc.Sbi_core.Scores.s ))
    scores

let rec scale_rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> scale_rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let warm_topk idx =
  ignore (Sbi_index.Triage.topk ~k:10 idx);
  let samples =
    Array.init 50 (fun _ ->
        let _, dt = time (fun () -> Sbi_index.Triage.topk ~k:10 idx) in
        dt)
  in
  median samples

let run_scale ~runs =
  let log_dir = Filename.temp_dir "sbi_bench" ".scalelog" in
  let idx_dir = Filename.temp_dir "sbi_bench" ".scaleidx" in
  Fun.protect
    ~finally:(fun () ->
      try
        scale_rm_rf log_dir;
        scale_rm_rf idx_dir
      with Sys_error _ -> ())
    (fun () ->
      let waves = 16 and shards = 4 in
      let per = max 1 (runs / waves) in
      let gen_t = ref 0. and build_t = ref 0. in
      let start = ref 0 in
      while !start < runs do
        let n = min per (runs - !start) in
        let (), dt =
          time (fun () ->
              ignore (Sbi_corpus.Synth.generate ~shards ~start:!start ~runs:n ~dir:log_dir ()))
        in
        gen_t := !gen_t +. dt;
        let (), dt =
          time (fun () -> ignore (Sbi_index.Index.build ~log:log_dir ~dir:idx_dir ()))
        in
        build_t := !build_t +. dt;
        start := !start + n
      done;
      let idx, open_s = time (fun () -> Sbi_index.Index.open_ ~dir:idx_dir) in
      let ref_topk, cold_s = time (fun () -> Sbi_index.Triage.topk ~k:10 idx) in
      let warm_s = warm_topk idx in
      let st, compact_s = time (fun () -> Sbi_index.Index.compact ~dir:idx_dir ()) in
      let idx2, open_after_s = time (fun () -> Sbi_index.Index.open_ ~dir:idx_dir) in
      let after_topk = Sbi_index.Triage.topk ~k:10 idx2 in
      let after_s = warm_topk idx2 in
      let fsck = Sbi_index.Index.fsck ~dir:idx_dir in
      {
        sc_runs = runs;
        sc_gen_s = !gen_t;
        sc_build_s = !build_t;
        sc_open_s = open_s;
        sc_topk_cold_s = cold_s;
        sc_topk_warm_s = warm_s;
        sc_compact_s = compact_s;
        sc_open_after_s = open_after_s;
        sc_topk_after_s = after_s;
        sc_segments_before = st.Sbi_index.Index.cp_segments_before;
        sc_segments_after = st.Sbi_index.Index.cp_segments_after;
        sc_bytes_before = st.Sbi_index.Index.cp_bytes_before;
        sc_bytes_after = st.Sbi_index.Index.cp_bytes_after;
        sc_identical = scale_sig ref_topk = scale_sig after_topk;
        sc_fsck_clean =
          fsck.Sbi_index.Index.fsck_corrupt = 0 && fsck.Sbi_index.Index.fsck_dead_files = [];
      })

let print_scale r =
  Printf.printf
    "scale (%d runs): gen %.1fs, build %.1fs, open %.1f ms, topk cold %.2f ms / warm \
     %.3f ms, compact %.1fs (%d -> %d segment(s), %.1f -> %.1f MB), reopen %.1f ms, \
     topk warm %.3f ms, rankings %s, fsck %s\n%!"
    r.sc_runs r.sc_gen_s r.sc_build_s (r.sc_open_s *. 1e3) (r.sc_topk_cold_s *. 1e3)
    (r.sc_topk_warm_s *. 1e3) r.sc_compact_s r.sc_segments_before r.sc_segments_after
    (float_of_int r.sc_bytes_before /. 1e6)
    (float_of_int r.sc_bytes_after /. 1e6)
    (r.sc_open_after_s *. 1e3) (r.sc_topk_after_s *. 1e3)
    (if r.sc_identical then "bit-identical" else "DIVERGED")
    (if r.sc_fsck_clean then "clean" else "DIRTY")

let scale_entries r =
  [
    ("scale:gen", r.sc_gen_s *. 1e9);
    ("scale:build", r.sc_build_s *. 1e9);
    ("scale:open", r.sc_open_s *. 1e9);
    ("scale:topk:cold", r.sc_topk_cold_s *. 1e9);
    ("scale:topk:warm", r.sc_topk_warm_s *. 1e9);
    ("scale:compact", r.sc_compact_s *. 1e9);
    ("scale:open:after_compact", r.sc_open_after_s *. 1e9);
    ("scale:topk:after_compact", r.sc_topk_after_s *. 1e9);
  ]

(* `bench/main.exe --scale-check`: exit non-zero unless, at
   SBI_SCALE_RUNS (default one million) runs, the warm indexed top-k
   stays inside SBI_SCALE_BUDGET_MS (default 10 ms), compaction strictly
   reduces both segment count and live bytes, rankings are bit-identical
   across it, and fsck comes back clean. *)
let scale_check () =
  Printf.printf "scale-check: %d-run corpus, %.1f ms warm top-k budget\n%!" scale_runs
    scale_budget_ms;
  let r = run_scale ~runs:scale_runs in
  print_scale r;
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        ( r.sc_topk_warm_s *. 1e3 < scale_budget_ms,
          Printf.sprintf "warm topk %.3f ms over the %.1f ms budget"
            (r.sc_topk_warm_s *. 1e3) scale_budget_ms );
        ( r.sc_topk_after_s *. 1e3 < scale_budget_ms,
          Printf.sprintf "post-compaction warm topk %.3f ms over the %.1f ms budget"
            (r.sc_topk_after_s *. 1e3) scale_budget_ms );
        ( r.sc_segments_after < r.sc_segments_before,
          Printf.sprintf "compaction left %d of %d segment(s)" r.sc_segments_after
            r.sc_segments_before );
        ( r.sc_bytes_after < r.sc_bytes_before,
          Printf.sprintf "compaction grew live bytes %d -> %d" r.sc_bytes_before
            r.sc_bytes_after );
        (r.sc_identical, "top-k not bit-identical across compaction");
        (r.sc_fsck_clean, "fsck not clean after compaction");
      ]
  in
  if problems = [] then begin
    Printf.printf "scale-check OK: warm top-k within %.1f ms at %d runs\n" scale_budget_ms
      scale_runs;
    exit 0
  end
  else begin
    List.iter (fun m -> prerr_endline ("scale-check FAILED: " ^ m)) problems;
    exit 1
  end

(* --- run and report --- *)

let run_benchmarks tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"sbi" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let human_time ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      rows := (name, est, r2) :: !rows)
    results;
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  let tab =
    Sbi_util.Texttab.create ~title:"Benchmark results (time per regeneration)"
      [
        ("benchmark", Sbi_util.Texttab.Left);
        ("time/run", Sbi_util.Texttab.Right);
        ("r2", Sbi_util.Texttab.Right);
      ]
  in
  List.iter
    (fun (name, est, r2) ->
      Sbi_util.Texttab.add_row tab [ name; human_time est; Printf.sprintf "%.3f" r2 ])
    sorted;
  print_string (Sbi_util.Texttab.render tab)

(* Machine-readable results: BENCH_core.json maps each benchmark name to
   ns/op and mops/s so the perf trajectory is diffable across PRs (format
   documented in docs/ingest.md and docs/perf.md).  [extra] merges
   one-shot wall-clock entries (the par:* sections) into the same map. *)
(* `bench/main.exe --speedup-check`: exit non-zero unless parallel
   analysis actually pays off.  On a host with >= 4 hardware domains this
   is the full gate — `par:eliminate:d4` at least 2x faster than
   sequential and every measured dN strictly faster than seq; on a
   core-starved host true speedup is physically impossible, so the gate
   degrades to "parallel never loses": dN within 15% of sequential
   (the clamped pool must collapse oversubscribed requests to inline
   execution) — which is precisely the regression the old static pool
   failed (d8 was ~8x *slower* than seq).  In both modes
   `par:serve:topk:d4` must stay within tolerance of d1, and parallel
   rankings must be bit-identical to sequential. *)

let speedup_runs =
  match Sys.getenv_opt "SBI_SPEEDUP_RUNS" with
  | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 50_000)
  | None -> 50_000

let speedup_check () =
  let cores = Sbi_par.Domain_pool.default_domains () in
  let full_gate = cores >= 4 in
  Printf.printf
    "speedup-check: %d-run reference corpus, %d hardware domain(s) -> %s gate\n%!"
    speedup_runs cores
    (if full_gate then "full 2x-speedup" else "no-regression (need >= 4 cores for 2x)");
  let ctx = build_synth_ctx ~nruns:speedup_runs in
  let ok = ref true in
  let gate what cond detail =
    if cond then Printf.printf "  ok: %s (%s)\n%!" what detail
    else begin
      ok := false;
      Printf.printf "  FAILED: %s (%s)\n%!" what detail
    end
  in
  let reps = 3 in
  let seq_idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
  ignore (Sbi_index.Index.snapshot seq_idx);
  let seq_res = Sbi_index.Triage.analyze seq_idx in
  let seq_dt = best_of reps (fun () -> ignore (Sbi_index.Triage.analyze seq_idx)) in
  Printf.printf "  eliminate seq: %.1f ms\n%!" (seq_dt *. 1e3);
  List.iter
    (fun domains ->
      let pool = Sbi_par.Domain_pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Sbi_par.Domain_pool.shutdown pool)
        (fun () ->
          let idx = Sbi_index.Index.open_par ~pool ~dir:ctx.sy_idx_dir in
          ignore (Sbi_index.Index.snapshot ~pool idx);
          let res = Sbi_index.Triage.analyze ~pool idx in
          gate
            (Printf.sprintf "eliminate:d%d bit-identical to seq" domains)
            (res = seq_res) "rankings, counts, elimination trace";
          let dt = best_of reps (fun () -> ignore (Sbi_index.Triage.analyze ~pool idx)) in
          let speedup = seq_dt /. Float.max dt 1e-9 in
          Printf.printf "  eliminate d%d (eff %d): %.1f ms (%.2fx vs seq)\n%!" domains
            (Sbi_par.Domain_pool.size pool) (dt *. 1e3) speedup;
          if full_gate then
            gate
              (Printf.sprintf "eliminate:d%d > seq" domains)
              (speedup > 1.0)
              (Printf.sprintf "%.2fx" speedup)
          else
            gate
              (Printf.sprintf "eliminate:d%d does not regress vs seq" domains)
              (dt <= (seq_dt *. 1.15) +. 0.002)
              (Printf.sprintf "%.1f ms vs %.1f ms seq" (dt *. 1e3) (seq_dt *. 1e3));
          if full_gate && domains = 4 then
            gate "eliminate:d4 >= 2x seq" (speedup >= 2.0) (Printf.sprintf "%.2fx" speedup)))
    [ 2; 4 ];
  (* serve read path: topk latency must not rise with --domains *)
  let serve_lat domains =
    let sock = Filename.temp_file "sbi_bench" ".sock" in
    Sys.remove sock;
    let config =
      {
        (Sbi_serve.Server.default_config (Sbi_serve.Wire.Unix_sock sock)) with
        Sbi_serve.Server.fsync = false;
        domains;
      }
    in
    let idx = Sbi_index.Index.open_ ~dir:ctx.sy_idx_dir in
    let srv = Sbi_serve.Server.start config idx in
    let nclients = 4 and per_client = 50 in
    let worker () =
      let client = connect_exn (Sbi_serve.Wire.Unix_sock sock) in
      for _ = 1 to per_client do
        match Sbi_serve.Client.request client "topk 10" with
        | Ok _ -> ()
        | Error e -> failwith ("speedup-check query failed: " ^ e)
      done;
      Sbi_serve.Client.close client
    in
    let round () =
      let threads = Array.init nclients (fun _ -> Thread.create worker ()) in
      Array.iter Thread.join threads
    in
    let dt = best_of 2 round in
    Sbi_serve.Server.stop srv;
    dt /. float_of_int (nclients * per_client)
  in
  let d1 = serve_lat 1 in
  let d4 = serve_lat 4 in
  Printf.printf "  serve topk: d1 %.3f ms/req, d4 %.3f ms/req\n%!" (d1 *. 1e3) (d4 *. 1e3);
  gate "serve:topk:d4 no worse than d1"
    (d4 <= (d1 *. 1.15) +. 0.0002)
    (Printf.sprintf "%.3f ms vs %.3f ms" (d4 *. 1e3) (d1 *. 1e3));
  if !ok then begin
    Printf.printf "speedup-check OK\n";
    exit 0
  end
  else begin
    prerr_endline "speedup-check FAILED: parallel analysis does not pay off";
    exit 1
  end

let write_bench_json ~path ?(extra = []) results =
  let module J = Sbi_util.Json in
  let rows = ref extra in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) when Float.is_finite ns && ns > 0. -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  let doc =
    J.Obj
      [
        ("schema", J.Str "sbi-bench/1");
        ("runs_per_study", J.int bench_runs);
        ( "benchmarks",
          J.Obj
            (List.map
               (fun (name, ns) ->
                 ( name,
                   J.Obj [ ("ns_per_op", J.Num ns); ("mops_per_s", J.Num (1e3 /. ns)) ] ))
               sorted) );
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d benchmarks)\n" path (List.length sorted)

let print_tables () =
  print_endline "\n===== Regenerated paper tables (reduced run counts) =====\n";
  let moss = moss () in
  let rows = all_rows () in
  print_endline (Table1.render ~top:8 moss);
  print_endline (Table2.render rows);
  print_endline (Table3.render moss);
  print_endline
    (Predictor_table.render ~title:"Table 4: Predictors for CCRYPT (analogue)"
       (bundle "ccryptim"));
  print_endline
    (Predictor_table.render ~title:"Table 5: Predictors for BC (analogue)" (bundle "bcim"));
  print_endline
    (Predictor_table.render ~title:"Table 6: Predictors for EXIF (analogue)" (bundle "exifim"));
  print_endline
    (Predictor_table.render ~title:"Table 7: Predictors for RHYTHMBOX (analogue)"
       (bundle "rhythmim"));
  print_endline (Table8.render rows);
  print_endline (Table9.render moss);
  print_endline (Ablation.render moss);
  print_endline (Stack_study.render rows)

let () =
  if Array.exists (fun a -> a = "--par-check") Sys.argv then par_check ();
  if Array.exists (fun a -> a = "--speedup-check") Sys.argv then speedup_check ();
  if Array.exists (fun a -> a = "--fault-check") Sys.argv then fault_check ();
  if Array.exists (fun a -> a = "--obs-check") Sys.argv then obs_check ();
  if Array.exists (fun a -> a = "--sbfl-check") Sys.argv then sbfl_check ();
  if Array.exists (fun a -> a = "--scale-check") Sys.argv then scale_check ();
  if Array.exists (fun a -> a = "--ingest-check") Sys.argv then ingest_check ();
  if Array.exists (fun a -> a = "--conn-check") Sys.argv then conn_check ();
  Printf.printf "sbi benchmark harness: %d runs/study, adaptive training on %d runs\n%!"
    bench_runs bench_train;
  ignore (Lazy.force bundles);
  let tests =
    table_tests () @ core_tests () @ runtime_tests () @ ingest_tests () @ index_tests ()
  in
  Printf.eprintf "[bench] timing %d benchmarks...\n%!" (List.length tests);
  let results = run_benchmarks tests in
  print_results results;
  Printf.eprintf "[bench] timing parallel vs sequential collection...\n%!";
  print_collection_scaling ();
  Printf.eprintf "[bench] building %d-run synthetic corpus...\n%!" synth_nruns;
  let ctx = build_synth_ctx ~nruns:synth_nruns in
  Printf.eprintf "[bench] timing index build and indexed vs rescan top-k...\n%!";
  print_index_scaling ctx;
  Printf.eprintf "[bench] timing sequential vs parallel elimination...\n%!";
  let par_entries, par_ok = par_elimination_scaling ctx in
  Printf.eprintf "[bench] timing server throughput at 1/2/4/8 domains...\n%!";
  let serve_entries = par_server_scaling ctx in
  Printf.eprintf "[bench] timing single-RPC vs batched group-commit ingest...\n%!";
  let ingest_entries = ingest_throughput ctx in
  Printf.eprintf "[bench] timing the event-loop front end under a 200-connection fleet...\n%!";
  let conn_entries, _, conn_dropped, conn_faults = conn_throughput ctx in
  if conn_dropped > 0 || conn_faults <> [] then
    Printf.eprintf "[bench] WARNING: conn fleet dropped %d requests (%s)\n%!" conn_dropped
      (String.concat ", " conn_faults);
  Printf.eprintf "[bench] timing fault-layer passthrough overhead...\n%!";
  let fault_entries, _ = fault_overhead ctx in
  Printf.eprintf "[bench] timing observability-layer overhead...\n%!";
  let obs_entries, _ = obs_overhead ctx in
  Printf.eprintf "[bench] timing per-formula topk and sbfl dispatch overhead...\n%!";
  let sbfl_entries, _, _ = sbfl_overhead ctx in
  Printf.eprintf "[bench] million-run scale: tiered store, lazy open, compaction (%d runs)...\n%!"
    scale_runs;
  let scale = run_scale ~runs:scale_runs in
  print_scale scale;
  write_bench_json
    ~path:(Option.value ~default:"BENCH_core.json" (Sys.getenv_opt "SBI_BENCH_JSON"))
    ~extra:
      (par_entries @ serve_entries @ ingest_entries @ conn_entries @ fault_entries
      @ obs_entries @ sbfl_entries @ scale_entries scale)
    results;
  print_tables ();
  if not par_ok then begin
    prerr_endline "bench: parallel analysis diverged from sequential";
    exit 1
  end
